"""Differential tests for the Alstrup word-level ``parse_many`` override.

``AlstrupScheme.parse_many`` decodes labels straight from the store's
packed words (no ``BitReader``, no intermediate ``Bits`` beyond the
codewords the label keeps); these tests pin it field-for-field against the
generic ``LabelingScheme.parse_many`` route, which goes through
``AlstrupLabel.from_bits`` — the same contract
``tests/test_freedman_parse_many.py`` enforces for the Freedman decoder.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.alstrup import AlstrupScheme, _parse_word
from repro.core.base import LabelingScheme
from repro.generators.workloads import make_tree, random_pairs
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.store import LabelStore, QueryEngine
from repro.testing import parent_array_trees


def _assert_same_labels(scheme: AlstrupScheme, store: LabelStore) -> None:
    nodes = list(range(store.n))
    word_level = scheme.parse_many(store, nodes)
    generic = LabelingScheme.parse_many(scheme, store, nodes)
    assert set(word_level) == set(generic)
    for node in nodes:
        assert word_level[node] == generic[node], f"label of node {node} differs"


@pytest.mark.parametrize("family", ["random", "path", "star", "caterpillar", "broom"])
def test_word_level_matches_generic_across_families(family):
    tree = make_tree(family, 120, seed=11)
    scheme = AlstrupScheme()
    _assert_same_labels(scheme, LabelStore.encode_tree(scheme, tree))


@settings(max_examples=25, deadline=None)
@given(tree=parent_array_trees(max_nodes=40))
def test_word_level_matches_generic_on_random_trees(tree):
    scheme = AlstrupScheme()
    _assert_same_labels(scheme, LabelStore.encode_tree(scheme, tree))


def test_parse_word_equals_from_bits_per_label():
    tree = make_tree("random", 60, seed=19)
    scheme = AlstrupScheme()
    store = LabelStore.encode_tree(scheme, tree)
    for node in range(store.n):
        bits = store.label_bits(node)
        assert _parse_word(bits.to_int(), len(bits)) == scheme.parse(bits)


def test_engine_queries_through_word_parser_match_oracle():
    tree = make_tree("random", 300, seed=29)
    scheme = AlstrupScheme()
    engine = QueryEngine.encode_tree(scheme, tree)
    oracle = TreeDistanceOracle(tree)
    pairs = random_pairs(tree, 600, seed=31)
    assert engine.batch_query(pairs) == [oracle.distance(u, v) for u, v in pairs]


def test_word_level_used_by_duck_typed_stores():
    """A store exposing only ``label_words`` still gets the word decoder."""

    class WordsOnlyStore:
        def __init__(self, store: LabelStore) -> None:
            self._store = store

        def label_words(self, nodes):
            return self._store.label_words(nodes)

    tree = make_tree("random", 80, seed=37)
    scheme = AlstrupScheme()
    store = LabelStore.encode_tree(scheme, tree)
    nodes = list(range(store.n))
    assert scheme.parse_many(WordsOnlyStore(store), nodes) == scheme.parse_many(
        store, nodes
    )


def test_word_level_out_of_range_node():
    from repro.store.label_store import StoreError

    tree = make_tree("random", 20, seed=1)
    scheme = AlstrupScheme()
    store = LabelStore.encode_tree(scheme, tree)
    with pytest.raises(StoreError):
        scheme.parse_many(store, [store.n])
