"""Tests for size-weighted prefix-free codes (light codes)."""

import math

from hypothesis import given, strategies as st

from repro.encoding.alphabetic import (
    SizeWeightedCode,
    codeword_length_bound,
    common_codeword_prefix,
    path_identifier,
)
from repro.encoding.bitio import Bits


def is_prefix(a: Bits, b: Bits) -> bool:
    return len(a) <= len(b) and b.data.startswith(a.data)


class TestSizeWeightedCode:
    def test_empty(self):
        assert len(SizeWeightedCode([])) == 0

    def test_single_child(self):
        code = SizeWeightedCode([10])
        assert len(code.codeword(0)) >= 1

    def test_codewords_are_distinct_and_prefix_free(self):
        code = SizeWeightedCode([5, 1, 9, 2, 2])
        words = code.codewords
        for i in range(len(words)):
            for j in range(len(words)):
                if i == j:
                    continue
                assert not is_prefix(words[i], words[j])

    def test_length_respects_weight(self):
        """Heavier children receive shorter (or equal) codewords."""
        code = SizeWeightedCode([100, 1])
        assert len(code.codeword(0)) <= len(code.codeword(1))

    def test_length_bound(self):
        weights = [7, 3, 3, 1, 1, 1]
        total = sum(weights)
        code = SizeWeightedCode(weights)
        for index, weight in enumerate(weights):
            assert len(code.codeword(index)) <= math.ceil(math.log2(total / weight)) + 2
            assert len(code.codeword(index)) <= codeword_length_bound(total, weight) + 1

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=40))
    def test_prefix_free_property(self, weights):
        code = SizeWeightedCode(weights)
        words = code.codewords
        assert len({word.data for word in words}) == len(words)
        for i in range(len(words)):
            for j in range(len(words)):
                if i != j:
                    assert not is_prefix(words[i], words[j])

    @given(st.lists(st.integers(min_value=1, max_value=1000), min_size=1, max_size=40))
    def test_kraft_inequality(self, weights):
        code = SizeWeightedCode(weights)
        kraft = sum(2.0 ** (-len(word)) for word in code.codewords)
        assert kraft <= 1.0 + 1e-9


class TestPathIdentifiers:
    def test_path_identifier_concatenates(self):
        words = [Bits("10"), Bits("0"), Bits("111")]
        assert path_identifier(words).data == "100111"

    def test_common_codeword_prefix(self):
        a = [Bits("10"), Bits("0"), Bits("111")]
        b = [Bits("10"), Bits("0"), Bits("110")]
        c = [Bits("11")]
        assert common_codeword_prefix(a, b) == 2
        assert common_codeword_prefix(a, a) == 3
        assert common_codeword_prefix(a, c) == 0
        assert common_codeword_prefix(a, a[:1]) == 1

    def test_telescoping_total_length(self):
        """Along a size-halving chain the total codeword length is O(log total)."""
        total = 2**12
        lengths = 0
        size = total
        while size > 1:
            child = size // 2
            code = SizeWeightedCode([child, size - child])
            lengths += len(code.codeword(0))
            size = child
        assert lengths <= 3 * math.log2(total) + 10
