"""Shared fixtures for the test suite.

The hypothesis strategies live in :mod:`repro.testing`; import them from
there (``from repro.testing import parent_array_trees``) rather than from
this conftest, so they resolve identically under any pytest rootdir.
"""

from __future__ import annotations

import os
import sys

# allow running the tests without installing the package first
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.generators.random_trees import random_prufer_tree
from repro.testing import STRUCTURED_FAMILIES
from repro.trees.tree import RootedTree


@pytest.fixture(params=sorted(STRUCTURED_FAMILIES))
def any_tree(request) -> RootedTree:
    """One representative tree per family."""
    return STRUCTURED_FAMILIES[request.param]()


@pytest.fixture
def medium_random_tree() -> RootedTree:
    """A moderately sized random tree shared by the scheme tests."""
    return random_prufer_tree(150, seed=7)
