"""Tests for the universal-tree machinery (Section 3.5, Lemma 3.6/3.7)."""

import math

from repro.core.level_ancestor import LevelAncestorScheme
from repro.generators.random_trees import random_prufer_tree
from repro.generators.structured import balanced_binary_tree, caterpillar_tree, path_tree, star_tree
from repro.trees.tree import RootedTree
from repro.universal.embedding import embedding_map, embeds_as_rooted_subtree
from repro.universal.goldberg import (
    goldberg_livshits_log2_size,
    lemma_3_6_size_bound,
    level_ancestor_lower_bound_bits,
    minimal_universal_tree_size_brute_force,
)
from repro.universal.universal_tree import (
    all_rooted_trees,
    all_rooted_trees_up_to,
    universal_tree_for_small_n,
    universal_tree_from_parent_labels,
)


class TestRootedTreeEnumeration:
    def test_counts(self):
        # increasing parent arrays: (n-1)! of them
        assert len(list(all_rooted_trees(1))) == 1
        assert len(list(all_rooted_trees(2))) == 1
        assert len(list(all_rooted_trees(3))) == 2
        assert len(list(all_rooted_trees(4))) == 6
        assert len(list(all_rooted_trees_up_to(4))) == 10

    def test_all_isomorphism_classes_present(self):
        """For n = 4 there are 4 rooted tree shapes; all must appear."""
        shapes = set()
        for tree in all_rooted_trees(4):
            degree_profile = tuple(sorted(tree.degree(v) for v in tree.nodes()))
            depth_profile = tuple(sorted(tree.depth(v) for v in tree.nodes()))
            shapes.add((degree_profile, depth_profile))
        assert len(shapes) == 4


class TestEmbedding:
    def test_path_embeds_in_longer_path(self):
        assert embeds_as_rooted_subtree(path_tree(3), path_tree(6))
        assert not embeds_as_rooted_subtree(path_tree(6), path_tree(3))

    def test_star_embedding_requires_degree(self):
        assert embeds_as_rooted_subtree(star_tree(4), star_tree(7))
        assert not embeds_as_rooted_subtree(star_tree(7), star_tree(4))
        assert not embeds_as_rooted_subtree(star_tree(4), path_tree(10))

    def test_embeds_into_itself(self):
        tree = random_prufer_tree(12, seed=1)
        assert embeds_as_rooted_subtree(tree, tree)

    def test_subtree_embeds_in_whole(self):
        tree = balanced_binary_tree(15)
        sub = balanced_binary_tree(7)
        assert embeds_as_rooted_subtree(sub, tree)

    def test_embedding_map_is_consistent(self):
        small = caterpillar_tree(6)
        big = caterpillar_tree(14)
        mapping = embedding_map(small, big)
        assert mapping is not None
        assert len(set(mapping.values())) == small.n
        for node in small.nodes():
            parent = small.parent(node)
            if parent is not None:
                assert big.parent(mapping[node]) == mapping[parent]

    def test_embedding_map_none_when_impossible(self):
        assert embedding_map(star_tree(5), path_tree(8)) is None


class TestLemma36Construction:
    def test_handles_plain_forest_of_chains(self):
        pairs = [("a", None), ("b", "a"), ("c", "b"), ("x", None), ("y", "x")]
        result = universal_tree_from_parent_labels(pairs)
        assert result.cycles_cut == 0
        assert result.label_count == 5
        assert result.tree.n == 6  # labels + global root

    def test_cuts_cycles_and_duplicates(self):
        # a 3-cycle of labels plus a pendant label
        pairs = [("a", "b"), ("b", "c"), ("c", "a"), ("d", "a")]
        result = universal_tree_from_parent_labels(pairs)
        assert result.cycles_cut == 1
        # component of 4 labels duplicated => 8 nodes + global root
        assert result.tree.n == 9
        # the result is a tree by construction (RootedTree validates it)

    def test_small_n_universal_tree_contains_every_tree(self):
        for n in (2, 3, 4, 5):
            result = universal_tree_for_small_n(n)
            for tree in all_rooted_trees_up_to(n):
                assert embeds_as_rooted_subtree(tree, result.tree), n

    def test_size_respects_lemma_3_6_bound(self):
        scheme = LevelAncestorScheme()
        for n in (2, 3, 4, 5):
            result = universal_tree_for_small_n(n, scheme)
            max_bits = 0
            for tree in all_rooted_trees_up_to(n):
                labels = scheme.encode(tree)
                max_bits = max(max_bits, max(l.bit_length() for l in labels.values()))
            assert result.tree.n <= lemma_3_6_size_bound(max_bits)
            # and it cannot be smaller than the number of distinct labels
            assert result.tree.n >= result.label_count


class TestGoldbergFormulas:
    def test_log_size_formula(self):
        assert goldberg_livshits_log2_size(2) >= 0
        assert goldberg_livshits_log2_size(1 << 16) > goldberg_livshits_log2_size(1 << 8)

    def test_level_ancestor_lower_bound_shape(self):
        # ~ 1/2 log^2 n for large n
        n = 1 << 20
        bound = level_ancestor_lower_bound_bits(n)
        assert 0.5 * 20 * 20 - 20 * math.log2(20) - 1 <= bound <= 0.5 * 20 * 20

    def test_lemma_3_6_size_bound(self):
        assert lemma_3_6_size_bound(3) == 17

    def test_brute_force_minimal_universal_tree(self):
        # trees on <= 3 nodes: path P3 and star S3 both embed in the 4-node
        # "chair" tree but not in any 3-node tree, so the minimum is 4
        assert minimal_universal_tree_size_brute_force(3, max_size=5) == 4

    def test_separation_between_distance_and_level_ancestor(self):
        """Theorem 1.1 vs Theorem 1.2: for large n the distance upper bound
        drops below the level-ancestor lower bound — the separation that is
        the paper's headline."""
        from repro.lowerbounds.bounds import exact_upper_bound_bits

        n = 1 << 64
        assert exact_upper_bound_bits(n) < level_ancestor_lower_bound_bits(n)
