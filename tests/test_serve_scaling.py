"""Tests for the serving scale-out layer: backpressure (BUSY + client
retry), MATRIX executor offload, the hot-pair response cache, fleet stats
merging and the shard-per-core supervisor.

The deterministic overload tests drive a :class:`ServingCore` directly (it
is socket-free by design); the retry tests run real servers; the supervisor
tests fork real worker processes — in-process through
:class:`FleetSupervisor` and end-to-end through the CLI with SIGTERM.
"""

from __future__ import annotations

import asyncio
import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.api import DistanceIndex, IndexCatalog
from repro.generators.workloads import make_tree, random_pairs, zipf_pairs
from repro.serve import (
    AsyncLabelClient,
    FleetSupervisor,
    LabelClient,
    LabelServer,
    ServerBusy,
    ServingCore,
    protocol,
)
from repro.serve.metrics import merge_fleet_stats, percentile
from repro.store import QueryEngine


@pytest.fixture(scope="module")
def tree():
    return make_tree("random", 150, seed=7)


@pytest.fixture(scope="module")
def index(tree):
    return DistanceIndex.build(tree, "freedman")


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(target, handler, **server_kwargs):
    server = LabelServer(target, **server_kwargs)
    host, port = await server.start()
    try:
        client = await AsyncLabelClient.connect(host, port)
        try:
            return await handler(server, client, host, port)
        finally:
            await client.close()
    finally:
        await server.stop()


# -- BUSY protocol ------------------------------------------------------------


def test_busy_frame_round_trip():
    frame = protocol.encode_busy(42, 7)
    decoder = protocol.FrameDecoder()
    decoder.feed(frame)
    (body,) = decoder.frames()
    assert protocol.decode_response(body) == (protocol.OP_BUSY, 42, 7)


def test_info_advertises_busy_feature(tree, index):
    async def handler(server, client, host, port):
        info = await client.info()
        assert "busy" in info["features"]
        assert info["protocol"] == protocol.PROTOCOL_VERSION
        assert info["worker"] == os.getpid()

    _run(_with_server(index, handler))


def test_stats_reservoir_flag_round_trips():
    plain = protocol.encode_stats(3, "m")
    flagged = protocol.encode_stats(4, "m", reservoir=True)
    decoder = protocol.FrameDecoder()
    decoder.feed(plain)
    decoder.feed(flagged)
    bodies = decoder.frames()
    assert protocol.decode_request(bodies[0]) == (
        protocol.OP_STATS,
        3,
        "m",
        None,
        None,
        None,
    )
    assert protocol.decode_request(bodies[1]) == (
        protocol.OP_STATS,
        4,
        "m",
        True,
        None,
        None,
    )


def test_stats_reservoir_is_opt_in(tree, index):
    """A plain STATS poll stays small; ``reservoir=True`` embeds the raw
    latency samples the fleet-merging consumers need."""
    pairs = random_pairs(tree, 50, seed=1)

    async def handler(server, client, host, port):
        await client.pipeline(pairs, raw=True, window=16)
        plain = await client.stats()
        assert "reservoir" not in plain["latency_ms"]
        assert plain["latency_ms"]["samples"] == len(pairs)
        full = await client.stats(reservoir=True)
        reservoir = full["latency_ms"]["reservoir"]
        assert len(reservoir) == full["latency_ms"]["samples"] == len(pairs)
        assert all(sample >= 0 for sample in reservoir)

    _run(_with_server(index, handler))


# -- bounded pending queue (deterministic, socket-free) -----------------------


class _FakeConnection:
    """Collects the frames a :class:`ServingCore` sends."""

    closed = False

    def __init__(self) -> None:
        self._decoder = protocol.FrameDecoder()

    def send(self, data: bytes) -> None:
        self._decoder.feed(data)

    def responses(self) -> list[tuple]:
        return [protocol.decode_response(body) for body in self._decoder.frames()]


def _request_body(frame: bytes) -> bytes:
    decoder = protocol.FrameDecoder()
    decoder.feed(frame)
    return decoder.frames()[0]


def test_pending_queue_is_bounded_and_sheds_busy(index):
    """50 queries in one tick against max_pending=8: exactly 8 answered,
    42 shed with BUSY, and the pending gauge returns to zero."""

    async def main():
        core = ServingCore(index, max_pending=8, max_batch=10_000)
        connection = _FakeConnection()
        for request_id in range(1, 51):
            core.handle_request(
                connection, _request_body(protocol.encode_query(request_id, 0, 1))
            )
        assert core.pending_total == 8  # the queue never grew past the bound
        await asyncio.sleep(0)  # let the scheduled coalescer flush run
        responses = connection.responses()
        answered = [r for r in responses if r[0] == protocol.OP_RESULT]
        shed = [r for r in responses if r[0] == protocol.OP_BUSY]
        assert len(answered) == 8
        assert len(shed) == 42
        assert all(isinstance(r[2], int) and r[2] >= 1 for r in shed)  # retry hint
        assert core.pending_total == 0
        stats = core.stats()
        assert stats["busy_rejections"] == 42
        assert stats["queries"] == 8
        assert stats["pending"] == 0

    _run(main())


def test_async_client_retries_busy_until_answered(tree, index):
    """Overload a tiny queue through a real socket: the async pipeline must
    retry the shed subset with backoff and still return every answer in
    order."""
    pairs = random_pairs(tree, 300, seed=3)
    expected = index.batch(pairs, raw=True)

    async def handler(server, client, host, port):
        answers = await client.pipeline(pairs, name="", raw=True, window=256)
        assert answers == expected
        assert client.busy_retried > 0  # the shed path was really exercised
        stats = await client.stats()
        assert stats["busy_rejections"] > 0
        assert stats["pending"] == 0

    _run(_with_server(index, handler, max_pending=4, max_batch=10_000))


async def _always_busy_connection(reader, writer):
    """A server that sheds every request: the retry-budget worst case."""
    decoder = protocol.FrameDecoder()
    while True:
        data = await reader.read(65536)
        if not data:
            break
        decoder.feed(data)
        for body in decoder.frames():
            request_id = protocol.decode_request(body)[1]
            writer.write(protocol.encode_busy(request_id, 1))


def test_busy_retry_budget_exhausts_against_dead_overload():
    """Against a server that sheds everything, both query and pipeline give
    up after the configured number of fruitless retries."""

    async def main():
        busy_server = await asyncio.start_server(_always_busy_connection, "127.0.0.1", 0)
        host, port = busy_server.sockets[0].getsockname()[:2]
        try:
            client = await AsyncLabelClient.connect(
                host, port, busy_retries=2, busy_base_delay=0.001
            )
            try:
                with pytest.raises(ServerBusy):
                    await client.query(0, 1)
                assert client.busy_retried == 2  # both budgeted retries spent
                with pytest.raises(ServerBusy):
                    await client.pipeline([(0, 1), (2, 3)], raw=True)
            finally:
                await client.close()
        finally:
            busy_server.close()
            await busy_server.wait_closed()

    _run(main())


# -- sync client retry against a thread-hosted overloaded server --------------


@pytest.fixture()
def threaded_tiny_queue_server(index):
    """A live ``max_pending=4`` server on a daemon thread."""
    bound: list[tuple[str, int]] = []
    ready = threading.Event()
    holder: dict = {}

    def run() -> None:
        async def main() -> None:
            server = LabelServer(index, max_pending=4, max_batch=10_000)
            bound.append(await server.start())
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            holder["server"] = server
            ready.set()
            serving = asyncio.ensure_future(server.serve_forever())
            await holder["stop"].wait()
            serving.cancel()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server thread failed to start"
    yield bound[0], holder
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(10)


def test_sync_client_retries_busy_until_answered(threaded_tiny_queue_server, tree, index):
    (host, port), holder = threaded_tiny_queue_server
    pairs = random_pairs(tree, 300, seed=5)
    with LabelClient(host, port) as client:
        answers = client.pipeline(pairs, raw=True, window=256)
        assert answers == index.batch(pairs, raw=True)
        assert client.busy_retried > 0
        assert client.stats()["busy_rejections"] > 0


# -- MATRIX executor offload --------------------------------------------------


def test_matrix_offloaded_and_correct(tree, index):
    nodes = [0, 5, 9, 17, 31]
    expected = index.matrix(nodes, raw=True)

    async def handler(server, client, host, port):
        assert await client.matrix(nodes, name="", raw=True) == expected
        full = await client.matrix(name="", raw=True)
        assert full == index.matrix(raw=True)
        stats = await client.stats()
        assert stats["matrix_requests"] == 2
        assert stats["matrix_offloaded"] == 2
        assert stats["matrix_inflight"] == 0

    _run(_with_server(index, handler))


def test_concurrent_matrix_beyond_inflight_cap_gets_busy(tree, index):
    """With max_matrix_inflight=1, a second MATRIX arriving while the first
    runs on the executor is shed with BUSY (raw sends bypass client retry)."""

    async def handler(server, client, host, port):
        first = client._send(lambda rid: protocol.encode_matrix(rid, None, ""))
        second = client._send(lambda rid: protocol.encode_matrix(rid, [0, 1, 2], ""))
        op, payload = await first
        assert op == protocol.OP_RESULT
        with pytest.raises(ServerBusy):
            await second
        stats = await client.stats()
        assert stats["busy_rejections"] == 1
        # the retrying client path succeeds once the executor drains
        assert await client.matrix([0, 1, 2], name="", raw=True) == index.matrix(
            [0, 1, 2], raw=True
        )

    _run(_with_server(index, handler, max_matrix_inflight=1))


def test_matrix_into_matches_distance_matrix_and_leaves_caches_alone(tree):
    engine = QueryEngine.encode_tree(
        DistanceIndex.build(tree, "freedman").scheme, tree
    )
    nodes = [3, 1, 4, 1, 5, 9, 2, 6]
    expected = [value for row in engine.distance_matrix(nodes) for value in row]
    before = engine.cache_info()
    flat = engine.matrix_into(nodes)
    assert flat == expected
    assert engine.cache_info() == before  # read-only: no counters, no inserts
    # the full matrix and the asymmetric path agree too
    full = engine.matrix_into()
    assert full == [value for row in engine.distance_matrix() for value in row]
    assert engine.matrix_into(nodes, assume_symmetric=False) == expected
    # out= appends into the caller's buffer
    out: list = [None]
    assert engine.matrix_into(nodes, out=out) is out
    assert out[1:] == expected


# -- hot-pair response cache --------------------------------------------------


def test_engine_pair_cache_symmetric_hits_and_eviction(tree):
    index = DistanceIndex.build(tree, "freedman", pair_cache_size=2)
    engine = index.engine
    a = index.query(3, 42, raw=True)
    assert engine.pair_misses == 1 and engine.pair_hits == 0
    assert index.query(42, 3, raw=True) == a  # symmetric key: same entry
    assert engine.pair_hits == 1
    index.query(1, 2, raw=True)
    index.query(5, 6, raw=True)  # evicts (3, 42)
    index.query(3, 42, raw=True)
    assert engine.pair_misses == 3 + 1
    info = engine.pair_cache_info()
    assert info["enabled"] and info["size"] == 2 and info["max_size"] == 2
    assert "pair_cache" in engine.cache_info()
    engine.clear_cache()
    assert engine.pair_cache_info()["hits"] == 0
    assert engine.pair_cache_info()["size"] == 0


def test_pair_cache_answers_match_uncached(tree):
    plain = DistanceIndex.build(tree, "freedman")
    cached = DistanceIndex.build(tree, "freedman", pair_cache_size=64)
    pairs = zipf_pairs(tree, 500, skew=1.2, seed=13)
    assert cached.batch(pairs, raw=True) == plain.batch(pairs, raw=True)
    assert cached.engine.pair_hits > 0  # the zipf hot set repeated
    for u, v in pairs[:20]:
        assert cached.query(u, v, raw=True) == plain.query(u, v, raw=True)


def test_pair_cache_disabled_by_default(tree):
    engine = DistanceIndex.build(tree, "freedman").engine
    engine.query(1, 2)
    assert engine.pair_cache_info() == {
        "enabled": False,
        "hits": 0,
        "misses": 0,
        "hit_rate": 0.0,
        "size": 0,
        "max_size": 0,
    }
    assert "pair_cache" not in engine.cache_info()
    assert "pair_cache" not in DistanceIndex.build(tree, "freedman").describe()


def test_describe_surfaces_pair_cache_hit_rate(tree):
    index = DistanceIndex.build(tree, "freedman", pair_cache_size=32)
    index.query(3, 42)
    index.query(3, 42)
    row = index.describe()
    assert row["pair_cache"]["enabled"]
    assert row["pair_cache"]["hit_rate"] == 0.5
    assert index.stats()["pair_cache"]["hits"] == 1


def test_server_enables_pair_cache_on_lazy_members(tree):
    catalog = IndexCatalog()
    catalog.add("exact", DistanceIndex.build(tree, "freedman"))
    fresh = IndexCatalog.from_bytes(catalog.to_bytes())
    pairs = zipf_pairs(tree, 400, skew=1.3, seed=17)

    async def handler(server, client, host, port):
        answers = await client.pipeline(pairs, name="exact", raw=True, window=64)
        assert answers == catalog.index("exact").batch(pairs, raw=True)
        stats = await client.stats("exact")
        pair_cache = stats["index"]["pair_cache"]
        assert pair_cache["enabled"]
        assert pair_cache["hits"] > 0
        assert stats["index"]["pair_cache"]["hit_rate"] > 0.0

    _run(_with_server(fresh, handler, pair_cache=512))


# -- fleet stats merging ------------------------------------------------------


def _stats_payload(worker, qps, reservoir, **extra):
    payload = {
        "worker": worker,
        "uptime_seconds": 1.0,
        "queries": len(reservoir),
        "flushes": max(1, len(reservoir) // 4),
        "coalesced_queries": len(reservoir),
        "qps": qps,
        "latency_ms": {
            "p50": percentile(reservoir, 0.5),
            "p99": percentile(reservoir, 0.99),
            "samples": len(reservoir),
            "reservoir": reservoir,
        },
        "coalescing": True,
    }
    payload.update(extra)
    return payload


def test_merged_percentiles_are_not_averaged_percentiles():
    """1000 fast samples on one worker, 10 slow on another: the fleet p99
    must reflect the distribution (fast), not the average of p99s (50ms)."""
    fast = _stats_payload(1, 1000.0, [1.0] * 1000)
    slow = _stats_payload(2, 10.0, [100.0] * 10)
    merged = merge_fleet_stats([fast, slow])
    assert merged["workers"] == 2
    assert merged["qps"] == 1010.0
    assert merged["latency_ms"]["samples"] == 1010
    assert merged["latency_ms"]["p99"] == 1.0  # rank 999 of 1010 sorted samples
    averaged = (fast["latency_ms"]["p99"] + slow["latency_ms"]["p99"]) / 2
    assert averaged == pytest.approx(50.5)  # the broken estimate this replaces
    # p50 likewise comes from the merged reservoir
    assert merged["latency_ms"]["p50"] == 1.0


def test_merge_dedupes_snapshots_by_worker_id():
    first = _stats_payload(7, 5.0, [1.0, 2.0], busy_rejections=1)
    second = _stats_payload(7, 9.0, [1.0, 2.0, 3.0], busy_rejections=2)
    merged = merge_fleet_stats([first, second])
    assert merged["workers"] == 1
    assert merged["qps"] == 9.0  # only the latest snapshot per worker counts
    assert merged["busy_rejections"] == 2
    assert merged["latency_ms"]["samples"] == 3


def test_merge_folds_member_index_cache_counters():
    a = _stats_payload(1, 1.0, [1.0])
    a["index"] = {
        "name": "m",
        "open": True,
        "cache": {"hits": 8, "misses": 2, "hit_rate": 0.8, "size": 4, "max_size": 8},
    }
    b = _stats_payload(2, 1.0, [1.0])
    b["index"] = {"name": "m", "open": False}
    merged = merge_fleet_stats([a, b])
    assert merged["index"]["cache"]["hits"] == 8
    assert merged["index"]["cache_hit_rate"] == 0.8


# -- the shard-per-core supervisor --------------------------------------------


@pytest.fixture(scope="module")
def store_file(tree, tmp_path_factory):
    path = tmp_path_factory.mktemp("fleet") / "fleet.bin"
    DistanceIndex.build(tree, "freedman").save(path)
    return str(path)


def test_fleet_supervisor_round_trip_and_aggregation(store_file, tree, index):
    supervisor = FleetSupervisor(store_file, workers=2, port=0, max_pending=10_000)
    host, port = supervisor.start()
    try:
        assert len(supervisor.pids) == 2
        assert supervisor.poll()
        pairs = random_pairs(tree, 200, seed=23)
        with LabelClient(host, port) as client:
            assert client.pipeline(pairs, raw=True, window=64) == index.batch(
                pairs, raw=True
            )
    finally:
        fleet = supervisor.shutdown()
    assert fleet["exit_codes"] == [0, 0]
    assert fleet["queries"] == len(pairs)
    assert fleet["workers"] >= 1  # stats only from workers that reported
    assert not supervisor.poll()


def test_supervisor_rejects_bad_worker_count(store_file):
    with pytest.raises(ValueError):
        FleetSupervisor(store_file, workers=0)


def _spawn_cli_serve(store_file: str, *extra: str):
    environment = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    environment["PYTHONPATH"] = src + (
        os.pathsep + environment["PYTHONPATH"] if environment.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", store_file, "--port", "0", *extra],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=environment,
    )
    line = process.stdout.readline()
    match = re.search(r"serving .* on ([0-9.]+):(\d+) \[", line)
    if not match:
        process.kill()
        raise RuntimeError(f"server failed to start: {line!r}")
    return process, match.group(1), int(match.group(2)), line


def test_cli_fleet_sigterm_tears_down_all_workers(store_file, tree, index):
    """The end-to-end satellite: ``serve --workers 2`` under SIGTERM exits 0,
    prints the fleet summary, and leaves no orphan worker processes."""
    process, host, port, ready = _spawn_cli_serve(store_file, "--workers", "2")
    try:
        pids = [
            int(p)
            for p in re.search(r"pids=([0-9]+(?:,[0-9]+)*)", ready).group(1).split(",")
        ]
        assert len(pids) == 2
        pairs = random_pairs(tree, 150, seed=29)
        with LabelClient(host, port) as client:
            assert client.pipeline(pairs, raw=True, window=32) == index.batch(
                pairs, raw=True
            )
    finally:
        process.send_signal(signal.SIGTERM)
        output, _ = process.communicate(timeout=30)
    assert process.returncode == 0, output
    assert "shutdown:" in output
    assert "fleet: 2 workers" in output
    deadline = time.monotonic() + 10
    for pid in pids:
        while time.monotonic() < deadline:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                break  # worker is gone
            time.sleep(0.05)
        else:
            pytest.fail(f"worker {pid} survived supervisor shutdown")
