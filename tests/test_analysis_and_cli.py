"""Tests for the measurement harness, the experiment drivers and the CLI."""

import pytest

from repro.analysis.experiments import (
    run_fig1_heavy_paths,
    run_fig2_hm_trees,
    run_fig4_universal_tree,
    run_fig5_regular_trees,
    run_table1_approx,
    run_table1_exact,
    run_table1_kdistance,
)
from repro.analysis.label_stats import (
    measure_approximate_scheme,
    measure_bounded_scheme,
    measure_scheme,
)
from repro.analysis.reporting import format_comparison, format_table
from repro.cli import build_parser, main
from repro.core.alstrup import AlstrupScheme
from repro.core.approximate import ApproximateScheme
from repro.core.kdistance import KDistanceScheme
from repro.generators.workloads import make_tree, random_pairs


class TestMeasurement:
    def test_measure_exact_scheme(self):
        tree = make_tree("random", 60, seed=0)
        measurement = measure_scheme(AlstrupScheme(), tree, random_pairs(tree, 40, 0), "random")
        assert measurement.mismatches == 0
        assert measurement.max_bits >= measurement.average_bits > 0
        assert measurement.queries_checked == 40
        row = measurement.as_row()
        assert row["scheme"] == "alstrup"
        assert row["n"] == 60

    def test_measure_bounded_scheme(self):
        tree = make_tree("random", 60, seed=1)
        measurement = measure_bounded_scheme(
            KDistanceScheme(3), tree, random_pairs(tree, 40, 0), "random"
        )
        assert measurement.mismatches == 0
        assert measurement.extra["k"] == 3

    def test_measure_approximate_scheme(self):
        tree = make_tree("random", 60, seed=2)
        measurement = measure_approximate_scheme(
            ApproximateScheme(0.5), tree, random_pairs(tree, 40, 0), "random"
        )
        assert measurement.mismatches == 0
        assert 1.0 <= measurement.extra["worst_ratio"] <= 1.5 + 1e-9


class TestExperimentDrivers:
    def test_table1_exact_rows(self):
        rows = run_table1_exact(sizes=[64], families=["random"], queries=20)
        assert len(rows) == 4  # four schemes
        assert all(row["mismatches"] == 0 for row in rows)
        assert all("paper_upper_quarter" in row for row in rows)

    def test_table1_kdistance_rows(self):
        rows = run_table1_kdistance(sizes=[64], ks=[2, 8], queries=20)
        assert len(rows) == 2
        assert {row["regime"] for row in rows} == {"k<log n", "k>=log n"}
        assert all(row["mismatches"] == 0 for row in rows)

    def test_table1_approx_rows(self):
        rows = run_table1_approx(sizes=[64], epsilons=[1.0, 0.25], queries=20)
        assert len(rows) == 2
        assert all(row["mismatches"] == 0 for row in rows)

    def test_fig1_rows(self):
        rows = run_fig1_heavy_paths(sizes=[64], families=["random", "path"])
        assert len(rows) == 2
        for row in rows:
            assert row["max_light_depth"] <= row["log2_n"]
            assert row["collapsed_height"] <= row["log2_n"]

    def test_fig2_rows(self):
        rows = run_fig2_hm_trees(hs=[2], ms=[4])
        assert rows[0]["mismatches"] == 0
        assert rows[0]["leaf_label_max_bits"] >= rows[0]["lemma_2_3_lower_bits"]

    def test_fig4_rows(self):
        rows = run_fig4_universal_tree(max_n=4)
        assert [row["n"] for row in rows] == [2, 3, 4]
        for row in rows:
            assert row["universal_tree_size"] <= row["lemma_3_6_bound"]

    def test_fig5_rows(self):
        rows = run_fig5_regular_trees(ks=[1])
        assert rows[0]["exact_pairwise_sum"] <= rows[0]["lemma_4_1_bound"] + 1e-9


class TestReporting:
    def test_format_table(self):
        text = format_table([{"a": 1, "b": "x"}, {"a": 22, "b": None}])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "b" in lines[0]
        assert "-" in lines[3]

    def test_format_table_empty(self):
        assert format_table([]) == "(no rows)"

    def test_format_comparison(self):
        text = format_comparison(10.0, 5.0, "demo")
        assert "ratio=2.00" in text


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["table1-exact", "--sizes", "64"])
        assert args.command == "table1-exact"
        assert args.sizes == [64]

    def test_demo_command(self, capsys):
        assert main(["demo", "--n", "40", "--family", "path"]) == 0
        output = capsys.readouterr().out
        assert "freedman" in output and "alstrup" in output

    def test_fig1_command(self, capsys):
        assert main(["fig1"]) == 0
        assert "collapsed_height" in capsys.readouterr().out

    def test_table1_exact_command(self, capsys):
        assert main(["table1-exact", "--sizes", "64", "--families", "random", "--queries", "10"]) == 0
        output = capsys.readouterr().out
        assert "freedman" in output

    @pytest.mark.parametrize(
        "argv",
        [
            ["table1-kdistance", "--sizes", "64", "--ks", "3", "--queries", "10"],
            ["table1-approx", "--sizes", "64", "--epsilons", "0.5", "--queries", "10"],
            ["fig5"],
        ],
    )
    def test_other_commands_run(self, capsys, argv):
        assert main(argv) == 0
        assert capsys.readouterr().out.strip()
