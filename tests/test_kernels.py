"""Tier selection, graceful degradation and cross-tier differentials.

The :mod:`repro.kernels` contract is that every tier — native C, numpy,
packed Python — returns **byte-identical answers** (a fused kernel that
cannot honour that declines with ``None`` and the caller falls back), and
that tier selection degrades gracefully: a missing compiler, a corrupt
shared library or an absent numpy must never break a query, only change
which tier answers it.  These tests force each tier through
``REPRO_KERNELS``, sabotage the native library through
``REPRO_KERNELS_LIB``, and run hypothesis differentials of
``batch_query``/``matrix_into`` across every registered scheme spec.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

import pytest
from hypothesis import given, settings

from repro import kernels
from repro.core.registry import make_scheme_from_spec
from repro.generators.workloads import make_tree, random_pairs
from repro.store import LabelStore, QueryEngine, StoreError
from repro.testing import parent_array_trees

#: every registered scheme, parameterised where construction needs it
ALL_SPECS = [
    "hld-fixed",
    "freedman",
    "freedman-no-accumulators",
    "freedman-no-binarize",
    "freedman-no-fragments",
    "alstrup",
    "separator",
    "naive-list",
    "k-distance:k=3",
    "approximate:epsilon=0.5",
]


@pytest.fixture(autouse=True)
def _fresh_probe():
    """Every test starts and ends with no cached probe (env tweaks local)."""
    kernels.reset()
    yield
    kernels.reset()


@contextmanager
def forced_tier(tier: str | None):
    """Force ``REPRO_KERNELS=tier`` for the duration (None clears it)."""
    old = os.environ.get(kernels.ENV_VAR)
    if tier is None:
        os.environ.pop(kernels.ENV_VAR, None)
    else:
        os.environ[kernels.ENV_VAR] = tier
    kernels.reset()
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(kernels.ENV_VAR, None)
        else:
            os.environ[kernels.ENV_VAR] = old
        kernels.reset()


def available_tiers() -> list[str]:
    with forced_tier(None):
        probed = kernels.probe(full=True)
        return [t for t in kernels.TIER_ORDER if probed["tiers"][t]["available"]]


# -- probe structure ---------------------------------------------------------


def test_probe_shape_and_python_floor():
    probed = kernels.probe(full=True)
    assert set(probed) == {"selected", "requested", "env_var", "tiers", "note", "full"}
    assert tuple(probed["tiers"]) == kernels.TIER_ORDER
    # the packed-Python floor is part of the library, never unavailable
    assert probed["tiers"]["python"]["available"] is True
    assert probed["selected"] in kernels.TIER_ORDER
    assert kernels.backend().name == probed["selected"]


def test_unknown_env_value_falls_back_to_automatic():
    with forced_tier("fortran"):
        probed = kernels.probe(full=True)
        assert probed["requested"] is None
        assert "unknown" in probed["note"]
        assert probed["selected"] in kernels.TIER_ORDER


def test_partial_probe_skips_tiers_below_forced_floor():
    """Forcing python must not pay a native compile attempt."""
    with forced_tier("python"):
        probed = kernels.probe()
        assert probed["selected"] == "python"
        assert probed["tiers"]["native"]["available"] is None
        assert probed["tiers"]["numpy"]["available"] is None
        # a later full probe upgrades the cached result
        full = kernels.probe(full=True)
        assert full["tiers"]["python"]["available"] is True
        assert full["selected"] == "python"


@pytest.mark.parametrize("tier", ["native", "numpy", "python"])
def test_forcing_each_available_tier_selects_it(tier):
    if tier not in available_tiers():
        pytest.skip(f"{tier} tier not available in this environment")
    with forced_tier(tier):
        assert kernels.backend_name() == tier
        assert kernels.probe()["requested"] == tier


def test_get_backend_exposes_every_available_tier():
    for tier in available_tiers():
        backend = kernels.get_backend(tier)
        assert backend is not None and backend.name == tier


# -- graceful degradation on a broken native extension -----------------------


def test_missing_native_library_degrades(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS_LIB", str(tmp_path / "nowhere.so"))
    kernels.reset()
    probed = kernels.probe(full=True)
    assert probed["tiers"]["native"]["available"] is False
    assert probed["selected"] in ("numpy", "python")


def test_corrupt_native_library_degrades(tmp_path, monkeypatch):
    bogus = tmp_path / "corrupt.so"
    bogus.write_bytes(b"\x7fELF this is not a shared library")
    monkeypatch.setenv("REPRO_KERNELS_LIB", str(bogus))
    kernels.reset()
    probed = kernels.probe(full=True)
    assert probed["tiers"]["native"]["available"] is False
    assert probed["selected"] in ("numpy", "python")


def test_forced_unavailable_tier_degrades_with_note(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS_LIB", str(tmp_path / "nowhere.so"))
    with forced_tier("native"):
        probed = kernels.probe(full=True)
        assert probed["selected"] in ("numpy", "python")
        assert "degraded" in probed["note"]
        # queries still answer correctly through the degraded tier
        tree = make_tree("random", 64, seed=3)
        engine = QueryEngine.encode_tree(make_scheme_from_spec("hld-fixed"), tree)
        assert engine.query(0, 63) == engine.batch_query([(0, 63)])[0]


# -- cross-tier differentials ------------------------------------------------


def _answers_under(tier, store, spec, pairs, nodes):
    with forced_tier(tier):
        scheme = make_scheme_from_spec(spec)
        engine = QueryEngine(store, scheme=scheme)
        return engine.batch_query(pairs), engine.matrix_into(nodes)


@pytest.mark.parametrize("spec", ["hld-fixed", "freedman"])
def test_fused_tiers_match_python_on_large_batches(spec):
    """Batches past every ``min_batch`` so the fused kernels really engage."""
    tree = make_tree("random", 300, seed=41)
    scheme = make_scheme_from_spec(spec)
    store = LabelStore.encode_tree(scheme, tree)
    pairs = random_pairs(tree, 500, seed=43) + [(7, 7), (0, 299)]
    nodes = list(range(80))
    reference = _answers_under("python", store, spec, pairs, nodes)
    for tier in available_tiers():
        assert _answers_under(tier, store, spec, pairs, nodes) == reference, tier


@settings(max_examples=10, deadline=None)
@given(tree=parent_array_trees(max_nodes=24))
def test_all_specs_identical_across_tiers(tree):
    tiers = available_tiers()
    pairs = [(u, v) for u in range(tree.n) for v in range(tree.n)]
    nodes = list(range(tree.n))
    for spec in ALL_SPECS:
        scheme = make_scheme_from_spec(spec)
        store = LabelStore.encode_tree(scheme, tree)
        reference = _answers_under("python", store, spec, pairs, nodes)
        for tier in tiers:
            assert _answers_under(tier, store, spec, pairs, nodes) == reference, (
                spec,
                tier,
            )


def test_cache_counters_identical_across_tiers():
    """Fused kernels replace only the query loop, never the bookkeeping."""
    tree = make_tree("random", 200, seed=47)
    scheme = make_scheme_from_spec("hld-fixed")
    store = LabelStore.encode_tree(scheme, tree)
    pairs = random_pairs(tree, 400, seed=53)
    infos = {}
    for tier in available_tiers():
        with forced_tier(tier):
            engine = QueryEngine(store, scheme=make_scheme_from_spec("hld-fixed"))
            engine.batch_query(pairs)
            engine.batch_query(pairs)
            info = engine.cache_info()
            assert info.pop("backend") == tier
            infos[tier] = info
    assert len({tuple(sorted(info.items())) for info in infos.values()}) == 1


@pytest.mark.parametrize("spec", ["hld-fixed", "freedman"])
def test_parse_checksums_agree_across_tiers(spec):
    """Every tier's decoder reads the exact same fields from the stream."""
    tree = make_tree("random", 150, seed=59)
    scheme = make_scheme_from_spec(spec)
    store = LabelStore.encode_tree(scheme, tree)
    nodes = list(range(store.n))
    checksums = {}
    for tier in available_tiers():
        backend = kernels.get_backend(tier)
        checksum = backend.parse_checksum(store, scheme, nodes)
        if checksum is not None:
            checksums[tier] = checksum
    assert "python" in checksums
    assert len(set(checksums.values())) == 1, checksums


def test_store_roundtrip_identical_across_tiers():
    """The bulk-varint header fast path decodes exactly like the loop."""
    tree = make_tree("random", 400, seed=61)  # n >= 256 engages the fast path
    scheme = make_scheme_from_spec("hld-fixed")
    data = LabelStore.encode_tree(scheme, tree).to_bytes()
    blobs = set()
    for tier in available_tiers():
        with forced_tier(tier):
            store = LabelStore.from_bytes(data)
            assert store.n == 400
            blobs.add(store.to_bytes())
    assert blobs == {data}
    # corrupt input raises the reference error no matter the tier
    for tier in available_tiers():
        with forced_tier(tier):
            with pytest.raises(StoreError):
                LabelStore.from_bytes(data[: len(data) // 2])


def test_describe_and_cache_info_report_active_tier():
    tree = make_tree("random", 50, seed=67)
    from repro.api import DistanceIndex

    for tier in available_tiers():
        with forced_tier(tier):
            index = DistanceIndex.build(tree, "hld-fixed")
            assert index.describe()["kernel"] == tier
            assert index.engine.cache_info()["backend"] == tier
