"""Tests for the bit reader/writer and the Bits value type."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.bitio import BitError, BitReader, BitWriter, Bits


class TestBits:
    def test_empty(self):
        assert len(Bits()) == 0
        assert Bits().to_int() == 0
        assert not Bits()

    def test_from_int_round_trip(self):
        assert Bits.from_int(13).data == "1101"
        assert Bits.from_int(13, 6).data == "001101"
        assert Bits.from_int(13, 6).to_int() == 13

    def test_from_int_zero_width(self):
        assert Bits.from_int(0, 0).data == ""
        with pytest.raises(BitError):
            Bits.from_int(1, 0)

    def test_from_int_overflow(self):
        with pytest.raises(BitError):
            Bits.from_int(8, 3)

    def test_rejects_negative(self):
        with pytest.raises(BitError):
            Bits.from_int(-1)

    def test_invalid_characters(self):
        with pytest.raises(BitError):
            Bits("01x")

    def test_concatenation_and_slicing(self):
        bits = Bits("101") + Bits("01")
        assert bits.data == "10101"
        assert bits[1:4].data == "010"

    @given(st.integers(min_value=0, max_value=10**9))
    def test_int_round_trip_property(self, value):
        assert Bits.from_int(value).to_int() == value

    @given(st.integers(min_value=0, max_value=255), st.integers(min_value=8, max_value=16))
    def test_padded_round_trip_property(self, value, width):
        encoded = Bits.from_int(value, width)
        assert len(encoded) == width
        assert encoded.to_int() == value


class TestBitWriterReader:
    def test_write_and_read_bits(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bits("001")
        writer.write_int(5, 4)
        bits = writer.getvalue()
        assert bits.data == "10010101"

        reader = BitReader(bits)
        assert reader.read_bit() == 1
        assert reader.read_bits(3).data == "001"
        assert reader.read_int(4) == 5
        assert reader.remaining() == 0

    def test_writer_length_tracking(self):
        writer = BitWriter()
        writer.write_bits("10101")
        writer.write_int(3, 2)
        assert len(writer) == 7

    def test_reader_exhaustion(self):
        reader = BitReader(Bits("10"))
        reader.read_bits(2)
        with pytest.raises(BitError):
            reader.read_bit()

    def test_reader_seek_and_peek(self):
        reader = BitReader(Bits("1100"))
        assert reader.peek_bit() == 1
        reader.seek(2)
        assert reader.read_bits(2).data == "00"
        with pytest.raises(BitError):
            reader.seek(9)

    def test_invalid_bit(self):
        writer = BitWriter()
        with pytest.raises(BitError):
            writer.write_bit(2)

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=200))
    def test_round_trip_property(self, bits):
        writer = BitWriter()
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in bits] == bits
