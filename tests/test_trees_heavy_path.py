"""Tests for the heavy path decomposition and the collapsed tree."""

import math

import pytest
from hypothesis import given, settings

from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import CLASSIC_VARIANT, PAPER_VARIANT, HeavyPathDecomposition
from repro.trees.tree import RootedTree
from repro.trees.validation import (
    check_collapsed_height_bound,
    check_heavy_path_rule,
    check_light_depth_bound,
    check_partition_into_paths,
)

from repro.testing import parent_array_trees


class TestHeavyPathDecomposition:
    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            HeavyPathDecomposition(RootedTree([None]), variant="bogus")

    def test_path_graph_classic_single_heavy_path(self):
        tree = RootedTree([None] + list(range(9)))
        decomposition = HeavyPathDecomposition(tree, variant=CLASSIC_VARIANT)
        assert decomposition.path_count() == 1
        assert decomposition.max_light_depth() == 0
        assert decomposition.path_nodes(0) == list(range(10))

    def test_path_graph_paper_variant_halves(self):
        """The paper's rule stops a path once the remaining subtree is < |T|/2,
        so a path graph is split into O(log n) heavy paths, all chained by
        light edges; the light depth stays logarithmic."""
        tree = RootedTree([None] + list(range(9)))
        decomposition = HeavyPathDecomposition(tree)
        assert 1 < decomposition.path_count() <= 5
        assert decomposition.max_light_depth() <= 4
        # the root path keeps at least half the nodes
        assert len(decomposition.path_nodes(decomposition.path_of(0))) >= 5

    def test_star_graph(self):
        tree = RootedTree([None] + [0] * 9)
        decomposition = HeavyPathDecomposition(tree)
        # no child holds half the tree, so the root is alone on its path
        assert decomposition.path_of(0) != decomposition.path_of(1)
        assert all(decomposition.light_depth(v) == 1 for v in range(1, 10))

    def test_positions_and_heads(self, any_tree):
        decomposition = HeavyPathDecomposition(any_tree)
        for path_id, path in enumerate(decomposition.paths()):
            assert decomposition.head(path_id) == path[0]
            for position, node in enumerate(path):
                assert decomposition.path_of(node) == path_id
                assert decomposition.position_on_path(node) == position
                assert decomposition.head_of(node) == path[0]

    def test_light_edges_on_root_path(self, any_tree):
        decomposition = HeavyPathDecomposition(any_tree)
        for node in any_tree.nodes():
            edges = decomposition.light_edges_on_root_path(node)
            assert len(edges) == decomposition.light_depth(node)
            for child in edges:
                assert decomposition.is_light_edge(child)

    def test_structural_invariants(self, any_tree):
        for variant in (PAPER_VARIANT, CLASSIC_VARIANT):
            decomposition = HeavyPathDecomposition(any_tree, variant=variant)
            check_partition_into_paths(decomposition)
        paper = HeavyPathDecomposition(any_tree, variant=PAPER_VARIANT)
        check_light_depth_bound(paper)
        check_heavy_path_rule(paper)

    @given(parent_array_trees(max_nodes=60))
    @settings(max_examples=60, deadline=None)
    def test_invariants_property(self, tree):
        decomposition = HeavyPathDecomposition(tree)
        check_partition_into_paths(decomposition)
        check_light_depth_bound(decomposition)
        check_heavy_path_rule(decomposition)

    def test_preorder_with_heavy_child_last(self, any_tree):
        decomposition = HeavyPathDecomposition(any_tree)
        order = decomposition.preorder_with_heavy_child_last()
        position = {node: index for index, node in enumerate(order)}
        assert sorted(order) == list(any_tree.nodes())
        # the heavy child's subtree occupies the tail of the parent's interval
        for node in any_tree.nodes():
            heavy = decomposition.heavy_child(node)
            if heavy is None:
                continue
            for child in any_tree.children(node):
                if child != heavy:
                    assert position[child] < position[heavy]


class TestCollapsedTree:
    def test_height_bound(self, any_tree):
        collapsed = CollapsedTree(HeavyPathDecomposition(any_tree))
        check_collapsed_height_bound(collapsed)
        assert collapsed.height() <= max(1, int(math.log2(any_tree.n)) if any_tree.n > 1 else 0)

    def test_parent_child_consistency(self, any_tree):
        collapsed = CollapsedTree(HeavyPathDecomposition(any_tree))
        for path in range(len(collapsed)):
            parent = collapsed.parent(path)
            if parent is None:
                assert path == collapsed.root
                continue
            assert path in collapsed.children(parent)
            branch = collapsed.branch_node(path)
            assert any_tree.parent(collapsed.head(path)) == branch
            assert collapsed.decomposition.path_of(branch) == parent

    def test_children_ordering(self, any_tree):
        decomposition = HeavyPathDecomposition(any_tree)
        collapsed = CollapsedTree(decomposition)
        for path in range(len(collapsed)):
            children = collapsed.children(path)
            positions = [
                decomposition.position_on_path(collapsed.branch_node(child))
                for child in children
            ]
            assert positions == sorted(positions)
            # exceptional = the last ordered child
            for index, child in enumerate(children):
                assert collapsed.is_exceptional(child) == (index == len(children) - 1)
                assert collapsed.child_index(child) == index

    def test_domination_matches_postorder(self, any_tree):
        collapsed = CollapsedTree(HeavyPathDecomposition(any_tree))
        numbers = [collapsed.domination_number(path) for path in range(len(collapsed))]
        assert sorted(numbers) == list(range(len(collapsed)))
        # an ancestor collapsed node never dominates its descendants
        for path in range(len(collapsed)):
            parent = collapsed.parent(path)
            if parent is not None:
                assert collapsed.domination_number(parent) > collapsed.domination_number(path)

    @given(parent_array_trees(max_nodes=50))
    @settings(max_examples=50, deadline=None)
    def test_domination_agrees_with_lemma_3_1(self, tree):
        """Observation (1): light-branching node dominates heavy-continuing node."""
        from repro.oracles.exact_oracle import TreeDistanceOracle

        decomposition = HeavyPathDecomposition(tree)
        collapsed = CollapsedTree(decomposition)
        oracle = TreeDistanceOracle(tree)
        leaves = [v for v in tree.nodes() if tree.is_leaf(v)]
        for u in leaves:
            for v in leaves:
                if u == v:
                    continue
                if decomposition.path_of(u) == decomposition.path_of(v):
                    continue
                nca = oracle.lca(u, v)
                if nca in (u, v):
                    continue
                u_child = next(x for x in tree.path_to_root(u) if tree.parent(x) == nca)
                v_child = next(x for x in tree.path_to_root(v) if tree.parent(x) == nca)
                u_light = decomposition.is_light_edge(u_child)
                v_light = decomposition.is_light_edge(v_child)
                if u_light and not v_light:
                    assert collapsed.dominates(u, v)
                if v_light and not u_light:
                    assert collapsed.dominates(v, u)

    def test_root_path_sequence(self, any_tree):
        collapsed = CollapsedTree(HeavyPathDecomposition(any_tree))
        for node in any_tree.nodes():
            sequence = collapsed.root_path_sequence(node)
            assert sequence[0] == collapsed.root
            assert sequence[-1] == collapsed.collapsed_node_of(node)
            assert len(sequence) == collapsed.depth(sequence[-1]) + 1
            for earlier, later in zip(sequence, sequence[1:]):
                assert collapsed.parent(later) == earlier
