"""Tests for catalog-aware shard placement: the consistent-hash routing
table, the ``MOVED`` redirect protocol, client-side direct routing, and the
sharded fleet's behaviour under reloads and worker restarts.

The socket-level tests reuse the deterministic idioms of the fleet suite:
worker deaths come from SIGKILL, reloads are driven directly through the
supervisor, and every distance answer is checked against the in-process
index so routing can never trade correctness for placement.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.api import DistanceIndex, IndexCatalog
from repro.generators.workloads import make_tree, random_pairs
from repro.serve import (
    FleetSupervisor,
    LabelClient,
    RestartPolicy,
    ServingCore,
    protocol,
)
from repro.serve.client import ServerMoved
from repro.serve.metrics import merge_fleet_stats
from repro.serve.routing import (
    HashRing,
    build_routing_table,
    member_endpoint,
    table_endpoint,
    table_owners,
)

MEMBERS = ["acl", "backbone", "core", "dht"]


@pytest.fixture(scope="module")
def tree():
    return make_tree("random", 60, seed=5)


@pytest.fixture(scope="module")
def member_indexes(tree):
    return {name: DistanceIndex.build(tree, "freedman") for name in MEMBERS}


@pytest.fixture(scope="module")
def catalog_file(member_indexes, tmp_path_factory):
    catalog = IndexCatalog()
    for name, index in member_indexes.items():
        catalog.add(name, index)
    path = tmp_path_factory.mktemp("routing") / "forest.cat"
    catalog.save(path)
    return str(path)


# -- hash ring ----------------------------------------------------------------


def test_ring_assignment_is_stable_and_complete():
    members = [f"m{i:03d}" for i in range(40)]
    ring = HashRing([0, 1, 2])
    first = ring.assign(members)
    again = HashRing([0, 1, 2]).assign(members)
    assert first == again  # pure function of (members, slots, geometry)
    assert set(first) == set(members)
    assert all(len(owners) == 1 for owners in first.values())
    # assignment must not depend on the caller's member order
    shuffled = HashRing([0, 1, 2]).assign(list(reversed(members)))
    assert shuffled == first


def test_ring_bounded_load():
    members = [f"member-{i}" for i in range(200)]
    ring = HashRing([0, 1, 2, 3])
    assignment = ring.assign(members, load_factor=1.25)
    load = {slot: 0 for slot in ring.slots}
    for owners in assignment.values():
        load[owners[0]] += 1
    # capacity = ceil(200/4 * 1.25) = 63
    assert max(load.values()) <= 63
    assert min(load.values()) >= 1


def test_ring_churn_moves_a_minority_of_members():
    members = [f"m{i:03d}" for i in range(120)]
    before = HashRing([0, 1]).assign(members)
    after = HashRing([0, 1, 2]).assign(members)
    moved = sum(1 for name in members if before[name] != after[name])
    # consistent hashing: adding a slot relocates ~1/3; dict-ordering or
    # modulo placement would move ~1/2 to 2/3
    assert moved < len(members) // 2


def test_ring_replication_distinct_owners_and_cap():
    members = [f"m{i}" for i in range(30)]
    ring = HashRing([0, 1, 2])
    assignment = ring.assign(members, replication=2)
    for owners in assignment.values():
        assert len(owners) == 2
        assert len(set(owners)) == 2
    capped = ring.assign(members, replication=9)  # > slot count
    assert all(len(owners) == 3 for owners in capped.values())


def test_routing_table_shape_and_lookups():
    table = build_routing_table(
        ["a", "b", "c"],
        {0: ("127.0.0.1", 4100), 1: ("127.0.0.1", 4101)},
        version=7,
        replication=2,
        generation="freedman@deadbeef",
    )
    assert table["version"] == 7
    assert table["replication"] == 2
    assert table["generation"] == "freedman@deadbeef"
    assert set(table["members"]) == {"a", "b", "c"}
    assert set(table["slots"]) == {"0", "1"}  # string keys: JSON-stable
    for name in "abc":
        owners = table_owners(table, name)
        assert owners and all(slot in (0, 1) for slot in owners)
        assert member_endpoint(table, name) == table_endpoint(table, owners[0])
    assert table_owners(table, "missing") == []
    assert member_endpoint(table, "missing") is None
    assert table_endpoint(table, 9) is None


# -- protocol: MOVED frame and the tagged request suffix ----------------------


def test_moved_frame_round_trip():
    frame = protocol.encode_moved(42, 3, "backbone", "10.0.0.7", 4117)
    decoder = protocol.FrameDecoder()
    decoder.feed(frame)
    (body,) = decoder.frames()
    op, request_id, payload = protocol.decode_response(body)
    assert op == protocol.OP_MOVED
    assert request_id == 42
    assert payload == (3, "backbone", "10.0.0.7", 4117)


def test_unsuffixed_requests_stay_byte_identical():
    from repro.encoding.varint import encode_uvarint as uvarint

    name = "m".encode("utf-8")
    legacy_body = (
        bytes([protocol.OP_QUERY]) + uvarint(7) + uvarint(len(name)) + name
        + uvarint(3) + uvarint(42)
    )
    legacy = uvarint(len(legacy_body)) + legacy_body
    assert protocol.encode_query(7, 3, 42, "m") == legacy
    # suffix fields append in ascending tag order after the payload
    stamped = protocol.encode_query(7, 3, 42, "m", trace_id=5, route_version=2)
    decoder = protocol.FrameDecoder()
    decoder.feed(stamped)
    (body,) = decoder.frames()
    assert body == legacy_body + b"\x01" + uvarint(5) + b"\x02" + uvarint(2)
    assert protocol.decode_request(body) == (
        protocol.OP_QUERY, 7, "m", (3, 42), 5, 2,
    )


# -- in-process ownership / redirect ------------------------------------------


class _FakeConnection:
    """Collects the frames a :class:`ServingCore` sends."""

    closed = False

    def __init__(self) -> None:
        self._decoder = protocol.FrameDecoder()

    def send(self, data: bytes) -> None:
        self._decoder.feed(data)

    def responses(self) -> list[tuple]:
        return [protocol.decode_response(body) for body in self._decoder.frames()]


def _request_body(frame: bytes) -> bytes:
    decoder = protocol.FrameDecoder()
    decoder.feed(frame)
    return decoder.frames()[0]


def _sharded_core(catalog_file, slot, table, **kwargs):
    return ServingCore(
        IndexCatalog.load(catalog_file), slot=slot, routing_table=table, **kwargs
    )


def _two_slot_table(version=1):
    # deterministic placement for the in-process tests: slot 0 owns the
    # first two members, slot 1 the rest
    return {
        "version": version,
        "replication": 1,
        "generation": None,
        "members": {name: [0 if name in MEMBERS[:2] else 1] for name in MEMBERS},
        "slots": {"0": ["127.0.0.1", 4100], "1": ["127.0.0.1", 4101]},
    }


def test_core_derives_assignment_from_table(catalog_file):
    table = _two_slot_table()
    core = _sharded_core(catalog_file, 1, table)
    assert core.routing_version == 1
    assert not core.owns(MEMBERS[0])
    assert core.owns(MEMBERS[2]) and core.owns(MEMBERS[3])
    stats = core.stats()
    assert stats["members_assigned"] == sorted(MEMBERS[2:])
    assert stats["members_open"] == []  # nothing opened yet
    assert core.info()["routing"] == table


def test_routed_request_for_unowned_member_gets_moved(catalog_file, member_indexes):
    import asyncio

    async def main():
        table = _two_slot_table(version=3)
        core = _sharded_core(catalog_file, 1, table)
        connection = _FakeConnection()
        # routed (stamped) request for a member slot 1 does not own
        core.handle_request(
            connection,
            _request_body(protocol.encode_query(9, 1, 2, MEMBERS[0], route_version=1)),
        )
        ((op, request_id, payload),) = connection.responses()
        assert op == protocol.OP_MOVED
        assert request_id == 9
        assert payload == (3, MEMBERS[0], "127.0.0.1", 4100)
        assert core.moved_redirects == 1
        assert core.misroutes == 0
        # owned member: the stamped request is answered normally
        core.handle_request(
            connection,
            _request_body(protocol.encode_query(10, 1, 2, MEMBERS[2], route_version=3)),
        )
        await asyncio.sleep(0)  # coalescer flush
        (answer,) = connection.responses()
        assert answer[0] == protocol.OP_RESULT
        kind, _, values = answer[2]
        assert values[0] == member_indexes[MEMBERS[2]].query(1, 2, raw=True)
        assert core.stats()["members_open"] == [MEMBERS[2]]

    asyncio.run(main())


def test_legacy_request_for_unowned_member_served_in_place(
    catalog_file, member_indexes
):
    import asyncio

    async def main():
        core = _sharded_core(catalog_file, 1, _two_slot_table())
        connection = _FakeConnection()
        # no route suffix: an old client — must get the right answer here
        core.handle_request(
            connection, _request_body(protocol.encode_query(11, 3, 4, MEMBERS[0]))
        )
        await asyncio.sleep(0)
        (answer,) = connection.responses()
        assert answer[0] == protocol.OP_RESULT
        assert answer[2][2][0] == member_indexes[MEMBERS[0]].query(3, 4, raw=True)
        assert core.misroutes == 1
        assert core.moved_redirects == 0

    asyncio.run(main())


# -- satellite: lazily opened member that fails to open -----------------------


def test_truncated_member_is_request_scoped_error(tree, tmp_path):
    catalog = IndexCatalog()
    catalog.add("good", DistanceIndex.build(tree, "freedman"))
    catalog.add("bad", DistanceIndex.build(tree, "alstrup"))
    path = tmp_path / "torn.cat"
    catalog.save(path)
    # open while intact (TOC parses), then tear off the tail: the *last*
    # member's blob is now short and fails at first lazy access
    opened = IndexCatalog.load(path)
    with open(path, "r+b") as handle:
        handle.truncate(os.path.getsize(path) - 64)

    import asyncio

    async def main():
        core = ServingCore(opened)
        connection = _FakeConnection()
        core.handle_request(
            connection, _request_body(protocol.encode_query(1, 0, 1, "bad"))
        )
        await asyncio.sleep(0)
        ((op, _, message),) = connection.responses()
        assert op == protocol.OP_ERROR
        assert "bad" in message and "failed to open" in message
        assert not connection.closed  # request-scoped, not connection-killing
        # the same connection keeps serving the intact member
        core.handle_request(
            connection, _request_body(protocol.encode_query(2, 0, 1, "good"))
        )
        await asyncio.sleep(0)
        (answer,) = connection.responses()
        assert answer[0] == protocol.OP_RESULT
        assert core.errors == 1

    asyncio.run(main())


# -- stale-table client: bounded redirects ------------------------------------


def test_stale_table_pipeline_converges_with_one_redirect(tree, catalog_file):
    """A client whose cached table predates a placement change completes a
    pipelined batch with exactly one MOVED redirect for the member (the
    whole window re-runs on the corrected endpoint)."""
    import asyncio

    from repro.serve.server import LabelServer

    index = DistanceIndex.build(tree, "freedman")
    pairs = random_pairs(tree, 64, seed=9)
    expected = index.batch(pairs, raw=True)
    target = MEMBERS[0]

    async def main():
        owner = LabelServer(IndexCatalog.load(catalog_file), slot=1)
        other = LabelServer(IndexCatalog.load(catalog_file), slot=0)
        host0, port0 = await other.start("127.0.0.1", 0)
        host1, port1 = await owner.start("127.0.0.1", 0)
        # authoritative table v2: every member owned by slot 1
        fresh = {
            "version": 2,
            "replication": 1,
            "generation": None,
            "members": {name: [1] for name in MEMBERS},
            "slots": {"0": [host0, port0], "1": [host1, port1]},
        }
        owner.set_routing(fresh)
        other.set_routing(fresh)
        # the client believes stale v1: target lives on slot 0
        stale = {
            "version": 1,
            "replication": 1,
            "generation": None,
            "members": {name: [0] for name in MEMBERS},
            "slots": {"0": [host0, port0], "1": [host1, port1]},
        }
        try:
            return await asyncio.to_thread(run_client, host0, port0, stale)
        finally:
            await owner.stop()
            await other.stop()

    def run_client(host, port, stale):
        with LabelClient(host, port, route=True) as client:
            client._route_table = stale
            client._route_checked = True
            client._route_stamp = 1
            answers = client.pipeline(pairs, name=target, raw=True, window=16)
            assert answers == expected
            assert client.route_redirects == 1  # exactly one MOVED absorbed
            # the hint is remembered: a second batch goes direct
            assert client.batch(pairs[:8], name=target, raw=True) == expected[:8]
            assert client.route_redirects == 1
            assert client._route_stamp == 2  # advanced to the server's version

    asyncio.run(main())


def test_moved_exception_carries_the_hint():
    moved = ServerMoved(4, "acl", "10.1.2.3", 4117)
    assert (moved.version, moved.member, moved.host, moved.port) == (
        4, "acl", "10.1.2.3", 4117,
    )
    assert "acl" in str(moved)


# -- fleet end-to-end ---------------------------------------------------------


def _sharded_supervisor(catalog_file, workers=2, **kwargs):
    return FleetSupervisor(
        catalog_file,
        workers=workers,
        port=0,
        shard_members=True,
        restart_policy=RestartPolicy(base_delay=0.02, max_delay=0.1),
        **kwargs,
    )


def _slot_stats(host, port, probes=8):
    """One STATS payload per distinct slot, via held-open probe connections."""
    clients, rows = [], {}
    try:
        for _ in range(probes):
            client = LabelClient(host, port)
            clients.append(client)
            stats = client.stats(reservoir=True)
            rows[stats.get("slot", 0)] = stats
    finally:
        for client in clients:
            client.close()
    return rows


def test_sharded_fleet_routes_and_stays_correct(
    catalog_file, member_indexes, tree
):
    supervisor = _sharded_supervisor(catalog_file)
    host, port = supervisor.start()
    pairs = random_pairs(tree, 40, seed=13)
    expected = {
        name: index.batch(pairs, raw=True) for name, index in member_indexes.items()
    }
    try:
        table = supervisor.routing_table
        assert table is not None and table["version"] == 1
        assert set(table["members"]) == set(MEMBERS)
        assert all(owners for owners in table["members"].values())
        # the direct ports exist and differ from the shared address
        endpoints = {table_endpoint(table, slot) for slot in (0, 1)}
        assert len(endpoints) == 2
        assert all(endpoint[1] not in (0, port) for endpoint in endpoints)

        # routed client: every member answered correctly with zero redirects
        with LabelClient(host, port, route=True) as routed:
            assert routed.routing_table()["version"] == 1
            for name in MEMBERS:
                assert routed.batch(pairs, name=name, raw=True) == expected[name]
                assert routed.query(*pairs[0], name=name, raw=True) == (
                    expected[name][0]
                )
            assert routed.route_redirects == 0
            rows = routed.stats_all(detail=True)
        merged = merge_fleet_stats(rows)
        assert merged.get("moved_redirects", 0) == 0
        assert merged.get("misroutes", 0) == 0
        assert merged["routing_version"] == 1

        # each worker opened only members it was assigned
        for stats in _slot_stats(host, port).values():
            assigned = set(stats["members_assigned"])
            assert set(stats["members_open"]) <= assigned
            assert assigned == {
                name
                for name, owners in table["members"].items()
                if stats["slot"] in owners
            }

        # legacy (un-routed) client through the shared port: byte-identical
        # answers for every member regardless of placement
        with LabelClient(host, port) as legacy:
            for name in MEMBERS:
                assert legacy.batch(pairs, name=name, raw=True) == expected[name]

        status = supervisor.fleet_status()
        assert status["routing"]["version"] == 1
        placement = {
            int(slot): set(row["members"])
            for slot, row in status["routing"]["slots"].items()
        }
        assert set().union(*placement.values()) == set(MEMBERS)
    finally:
        supervisor.shutdown()


def test_reload_bumps_version_and_keeps_members_owned(catalog_file, tree):
    supervisor = _sharded_supervisor(catalog_file)
    host, port = supervisor.start()
    pairs = random_pairs(tree, 24, seed=17)
    try:
        versions = [supervisor.routing_version]
        failures: list[Exception] = []
        done = threading.Event()

        def hammer():
            # a stale routed client keeps querying every member while the
            # fleet rolls: every member must stay owned by a live slot
            try:
                with LabelClient(host, port, route=True) as client:
                    while not done.is_set():
                        for name in MEMBERS:
                            client.batch(pairs[:8], name=name, raw=True)
            except Exception as error:  # pragma: no cover - fails the test
                failures.append(error)

        thread = threading.Thread(target=hammer, daemon=True)
        thread.start()
        for _ in range(2):
            supervisor.reload()
            versions.append(supervisor.routing_version)
        done.set()
        thread.join(timeout=10)
        assert not failures
        assert versions == sorted(set(versions))  # strictly increasing
        assert versions[-1] == 3
        table = supervisor.routing_table
        assert table["version"] == 3
        assert set(table["members"]) == set(MEMBERS)
        # workers converged on the new table
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            rows = _slot_stats(host, port)
            if all(row.get("routing_version") == 3 for row in rows.values()):
                break
            time.sleep(0.05)
        assert all(row.get("routing_version") == 3 for row in rows.values())
    finally:
        supervisor.shutdown()


def test_placement_stable_across_worker_restart(catalog_file):
    supervisor = _sharded_supervisor(catalog_file)
    host, port = supervisor.start()
    stop = threading.Event()
    loop = threading.Thread(
        target=supervisor.supervise,
        kwargs={"stop_check": stop.is_set, "interval": 0.02},
        daemon=True,
    )
    loop.start()
    try:
        table_before = supervisor.routing_table
        victim_slot = 0
        victim = supervisor.pids[victim_slot]
        os.kill(victim, signal.SIGKILL)
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if supervisor.total_restarts == 1 and supervisor.poll():
                break
            time.sleep(0.02)
        assert supervisor.total_restarts == 1 and supervisor.poll()
        # same table object, same version, same direct endpoints: placement
        # is a function of slots, not of worker incarnations
        assert supervisor.routing_table is table_before
        assert supervisor.routing_version == 1
        # the replacement re-binds the same direct port and owns the same
        # members; poll until its stats answer on the shared address
        expected_assigned = {
            name
            for name, owners in table_before["members"].items()
            if victim_slot in owners
        }
        deadline = time.monotonic() + 10
        fresh = None
        while time.monotonic() < deadline:
            rows = _slot_stats(host, port)
            fresh = rows.get(victim_slot)
            if fresh is not None and fresh.get("restarts") == 1:
                break
            time.sleep(0.05)
        assert fresh is not None and fresh["restarts"] == 1
        assert set(fresh["members_assigned"]) == expected_assigned
        with LabelClient(host, port, route=True) as client:
            assert client.routing_table()["version"] == 1
            for name in sorted(expected_assigned):
                client.query(0, 1, name=name)
            assert client.route_redirects == 0
    finally:
        stop.set()
        loop.join(timeout=10)
        supervisor.shutdown()


def test_shard_members_requires_reuse_port(catalog_file):
    supervisor = FleetSupervisor(
        catalog_file, workers=2, port=0, shard_members=True
    )
    supervisor.reuse_port = False  # simulate a platform without SO_REUSEPORT
    try:
        with pytest.raises(RuntimeError, match="SO_REUSEPORT"):
            supervisor.start()
    finally:
        supervisor.shutdown()


# -- satellite: (slot, pid) stats dedupe --------------------------------------


def _stats_row(slot, pid, queries=10):
    return {
        "slot": slot,
        "worker": pid,
        "queries": queries,
        "qps": 1.0,
        "uptime_seconds": 1.0,
        "latency_ms": {"p50": 1.0, "p99": 2.0, "samples": 0, "reservoir": []},
    }


def test_merge_dedupes_by_slot_and_pid():
    rows = [
        _stats_row(0, 100, queries=5),
        _stats_row(0, 100, queries=7),  # same incarnation, later snapshot
        _stats_row(0, 200, queries=3),  # slot 0 was restarted mid-run
        _stats_row(1, 300, queries=2),
    ]
    merged = merge_fleet_stats(rows)
    assert merged["workers"] == 3  # distinct (slot, pid) incarnations
    assert merged["slots"] == 2
    assert merged["restarts_observed"] == 1
    assert merged["queries"] == 7 + 3 + 2  # dead incarnation still counted


def test_merge_same_pid_on_two_slots_is_not_conflated():
    # pid reuse across slots (possible after heavy restarting): the old
    # pid-keyed dedupe collapsed these into one row
    merged = merge_fleet_stats([_stats_row(0, 400), _stats_row(1, 400)])
    assert merged["workers"] == 2
    assert merged["slots"] == 2
    assert merged["restarts_observed"] == 0


def test_merge_routing_version_is_max():
    rows = [_stats_row(0, 1), _stats_row(1, 2)]
    rows[0]["routing_version"] = 2
    rows[1]["routing_version"] = 3  # mid-reload: one worker already ahead
    assert merge_fleet_stats(rows)["routing_version"] == 3


def test_member_pair_counts_split():
    from repro.serve.loadgen import member_pair_counts

    assert member_pair_counts(100, 4, 0.0) == [25, 25, 25, 25]
    skewed = member_pair_counts(100, 4, 1.0)
    assert sum(skewed) == 100
    assert skewed[0] > skewed[-1]  # rank-1 member gets the most traffic
    with pytest.raises(ValueError):
        member_pair_counts(10, 0, 1.0)
