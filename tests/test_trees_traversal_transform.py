"""Tests for traversals and the Section 2 transform."""

import random

from hypothesis import given, settings

from repro.oracles.distance_matrix import DistanceMatrix
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.transform import attach_leaves, binarize, prepare_for_leaf_queries
from repro.trees.traversal import bfs_order, euler_tour, leaves_in_preorder, nodes_by_depth
from repro.trees.tree import RootedTree

from repro.testing import parent_array_trees, weighted_trees


class TestTraversals:
    def test_bfs_order(self, any_tree):
        order = bfs_order(any_tree)
        assert sorted(order) == list(any_tree.nodes())
        # depths are non-decreasing along a BFS
        depths = [any_tree.depth(node) for node in order]
        assert depths == sorted(depths)

    def test_euler_tour_length_and_depths(self, any_tree):
        tour, depths, first = euler_tour(any_tree)
        assert len(tour) == 2 * any_tree.n - 1
        assert len(depths) == len(tour)
        for index, node in enumerate(tour):
            assert depths[index] == any_tree.depth(node)
        for node in any_tree.nodes():
            assert tour[first[node]] == node

    def test_leaves_in_preorder(self, any_tree):
        leaves = list(leaves_in_preorder(any_tree))
        assert leaves == [v for v in any_tree.preorder() if any_tree.is_leaf(v)]

    def test_nodes_by_depth(self, any_tree):
        groups = nodes_by_depth(any_tree)
        assert sum(len(group) for group in groups.values()) == any_tree.n
        for depth, nodes in groups.items():
            assert all(any_tree.depth(node) == depth for node in nodes)


class TestAttachLeaves:
    def test_every_node_gets_a_pendant_leaf(self, any_tree):
        result = attach_leaves(any_tree)
        assert result.tree.n == 2 * any_tree.n
        for original, pendant in enumerate(result.query_node):
            assert result.tree.parent(pendant) == original
            assert result.tree.edge_weight(pendant) == 0
            assert result.tree.is_leaf(pendant)

    def test_only_internal_mode(self):
        tree = RootedTree([None, 0, 0])
        result = attach_leaves(tree, only_internal=True)
        assert result.query_node[1] == 1
        assert result.query_node[2] == 2
        assert result.query_node[0] != 0


class TestBinarize:
    def test_degrees_bounded_by_two(self, any_tree):
        result = binarize(any_tree)
        for node in result.tree.nodes():
            assert result.tree.degree(node) <= 2

    def test_star_binarization_preserves_distances(self):
        star = RootedTree([None] + [0] * 9)
        result = binarize(star)
        matrix = DistanceMatrix(result.tree)
        for u in range(1, 10):
            assert matrix.distance(result.query_node[0], result.query_node[u]) == 1
            for v in range(1, 10):
                if u != v:
                    assert matrix.distance(result.query_node[u], result.query_node[v]) == 2


class TestPrepareForLeafQueries:
    @given(weighted_trees(max_nodes=20))
    @settings(max_examples=30, deadline=None)
    def test_distances_preserved(self, tree):
        result = prepare_for_leaf_queries(tree)
        original = DistanceMatrix(tree)
        transformed = DistanceMatrix(result.tree)
        rng = random.Random(0)
        nodes = list(tree.nodes())
        for _ in range(30):
            u, v = rng.choice(nodes), rng.choice(nodes)
            assert original.distance(u, v) == transformed.distance(
                result.query_node[u], result.query_node[v]
            )

    @given(parent_array_trees(max_nodes=25))
    @settings(max_examples=30, deadline=None)
    def test_query_nodes_are_leaves(self, tree):
        result = prepare_for_leaf_queries(tree)
        for pendant in result.query_node:
            assert result.tree.is_leaf(pendant)

    def test_without_binarization(self, any_tree):
        result = prepare_for_leaf_queries(any_tree, binarize_tree=False)
        oracle_old = TreeDistanceOracle(any_tree)
        oracle_new = TreeDistanceOracle(result.tree)
        rng = random.Random(1)
        for _ in range(20):
            u = rng.randrange(any_tree.n)
            v = rng.randrange(any_tree.n)
            assert oracle_old.distance(u, v) == oracle_new.distance(
                result.query_node[u], result.query_node[v]
            )
