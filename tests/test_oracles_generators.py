"""Tests for the ground-truth oracles and the workload generators."""

import math
import random

import pytest
from hypothesis import given, settings

from repro.generators.random_trees import (
    random_binary_tree,
    random_caterpillar,
    random_prufer_tree,
    random_recursive_tree,
    random_weighted_tree,
)
from repro.generators.structured import (
    balanced_binary_tree,
    broom_tree,
    caterpillar_tree,
    comb_tree,
    path_tree,
    spider_tree,
    star_tree,
)
from repro.generators.workloads import (
    FAMILIES,
    WORKLOADS,
    all_pairs,
    make_tree,
    near_pairs,
    pair_workload,
    random_pairs,
    uniform_pairs,
    zipf_pairs,
)
from repro.oracles.distance_matrix import DistanceMatrix
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.tree import RootedTree

from repro.testing import weighted_trees


class TestDistanceMatrix:
    def test_matches_oracle(self, any_tree):
        matrix = DistanceMatrix(any_tree)
        oracle = TreeDistanceOracle(any_tree)
        for u in any_tree.nodes():
            for v in any_tree.nodes():
                assert matrix.distance(u, v) == oracle.distance(u, v)

    def test_symmetry_and_diagonal(self, any_tree):
        matrix = DistanceMatrix(any_tree)
        for u in any_tree.nodes():
            assert matrix.distance(u, u) == 0
            for v in any_tree.nodes():
                assert matrix.distance(u, v) == matrix.distance(v, u)

    @given(weighted_trees(max_nodes=15))
    @settings(max_examples=25, deadline=None)
    def test_weighted_distances(self, tree):
        matrix = DistanceMatrix(tree)
        oracle = TreeDistanceOracle(tree)
        for u in tree.nodes():
            for v in tree.nodes():
                assert matrix.distance(u, v) == oracle.distance(u, v)

    def test_diameter_and_profiles(self):
        tree = path_tree(6)
        matrix = DistanceMatrix(tree)
        assert matrix.diameter() == 5
        profile = matrix.leaf_profile([0, 5])
        assert profile == ((0, 5), (5, 0))


class TestExactOracle:
    def test_triangle_equality_through_lca(self, any_tree):
        oracle = TreeDistanceOracle(any_tree)
        rng = random.Random(0)
        for _ in range(50):
            u = rng.randrange(any_tree.n)
            v = rng.randrange(any_tree.n)
            lca = oracle.lca(u, v)
            assert oracle.distance(u, v) == oracle.distance(u, lca) + oracle.distance(lca, v)

    def test_level_ancestor(self):
        tree = path_tree(10)
        oracle = TreeDistanceOracle(tree)
        assert oracle.level_ancestor(9, 3) == 6
        assert oracle.level_ancestor(2, 5) is None

    def test_hop_distance_equals_weighted_for_unit_trees(self, any_tree):
        oracle = TreeDistanceOracle(any_tree)
        rng = random.Random(1)
        for _ in range(30):
            u, v = rng.randrange(any_tree.n), rng.randrange(any_tree.n)
            assert oracle.distance(u, v) == oracle.hop_distance(u, v)

    def test_eccentricity_path(self):
        oracle = TreeDistanceOracle(path_tree(8))
        assert oracle.eccentricity(0) == 7
        assert oracle.eccentricity(4) == 4


class TestStructuredGenerators:
    @pytest.mark.parametrize("n", [1, 2, 3, 10, 33])
    def test_sizes(self, n):
        for builder in (path_tree, star_tree, caterpillar_tree, balanced_binary_tree,
                        broom_tree, comb_tree):
            assert builder(n).n == n
        assert spider_tree(n, legs=3).n == n

    def test_path_shape(self):
        tree = path_tree(5)
        assert tree.height() == 4
        assert len(tree.leaves()) == 1

    def test_star_shape(self):
        tree = star_tree(7)
        assert tree.height() == 1
        assert len(tree.leaves()) == 6

    def test_balanced_binary_height(self):
        tree = balanced_binary_tree(31)
        assert tree.height() == 4
        assert all(tree.degree(v) <= 2 for v in tree.nodes())

    def test_spider_legs(self):
        tree = spider_tree(13, legs=4)
        assert tree.degree(0) == 4

    def test_rejects_nonpositive(self):
        for builder in (path_tree, star_tree, caterpillar_tree, balanced_binary_tree):
            with pytest.raises(ValueError):
                builder(0)


class TestRandomGenerators:
    @pytest.mark.parametrize("n", [1, 2, 3, 17, 64])
    def test_sizes_and_validity(self, n):
        assert random_prufer_tree(n, seed=1).n == n
        assert random_recursive_tree(n, seed=1).n == n
        assert random_caterpillar(n, seed=1).n == n
        binary = random_binary_tree(n, seed=1)
        assert binary.n == n
        assert all(binary.degree(v) <= 2 for v in binary.nodes())

    def test_determinism(self):
        a = random_prufer_tree(40, seed=11)
        b = random_prufer_tree(40, seed=11)
        assert [a.parent(v) for v in a.nodes()] == [b.parent(v) for v in b.nodes()]

    def test_different_seeds_differ(self):
        a = random_prufer_tree(60, seed=1)
        b = random_prufer_tree(60, seed=2)
        assert [a.parent(v) for v in a.nodes()] != [b.parent(v) for v in b.nodes()]

    def test_weighted_tree_weights_in_range(self):
        tree = random_weighted_tree(30, max_weight=5, seed=3)
        assert all(0 <= tree.edge_weight(v) <= 5 for v in tree.nodes())

    def test_prufer_uniformity_smoke(self):
        """All 3 labelled trees on 3 nodes appear across seeds."""
        shapes = set()
        for seed in range(60):
            tree = random_prufer_tree(3, seed=seed)
            shapes.add(tuple(tree.parent(v) for v in tree.nodes()))
        assert len(shapes) == 3


class TestWorkloads:
    def test_family_registry(self):
        for name in FAMILIES:
            tree = make_tree(name, 25, seed=0)
            assert tree.n == 25
        with pytest.raises(KeyError):
            make_tree("unknown", 10)

    def test_random_pairs(self):
        tree = make_tree("random", 30, seed=0)
        pairs = random_pairs(tree, 50, seed=1)
        assert len(pairs) == 50
        assert all(0 <= u < 30 and 0 <= v < 30 for u, v in pairs)

    def test_all_pairs(self):
        tree = make_tree("path", 5)
        assert len(all_pairs(tree)) == 25

    def test_near_pairs_are_biased(self):
        tree = make_tree("random", 200, seed=0)
        oracle = TreeDistanceOracle(tree)
        close = near_pairs(tree, 100, max_distance=3, seed=2)
        uniform = random_pairs(tree, 100, seed=2)
        close_avg = sum(oracle.distance(u, v) for u, v in close) / 100
        uniform_avg = sum(oracle.distance(u, v) for u, v in uniform) / 100
        assert close_avg < uniform_avg

    def test_uniform_pairs_accepts_count_or_tree(self):
        tree = make_tree("random", 40, seed=0)
        assert uniform_pairs(tree, 30, seed=1) == uniform_pairs(40, 30, seed=1)
        assert all(0 <= u < 40 and 0 <= v < 40 for u, v in uniform_pairs(40, 30))

    def test_zipf_pairs_are_skewed_and_deterministic(self):
        n, count = 500, 4000
        pairs = zipf_pairs(n, count, skew=1.2, seed=3)
        assert len(pairs) == count
        assert all(0 <= u < n and 0 <= v < n for u, v in pairs)
        assert pairs == zipf_pairs(n, count, skew=1.2, seed=3)  # deterministic
        assert pairs != zipf_pairs(n, count, skew=1.2, seed=4)
        # heavy concentration: the hottest decile of endpoints must cover far
        # more traffic than under the uniform workload
        counts: dict[int, int] = {}
        for u, v in pairs:
            counts[u] = counts.get(u, 0) + 1
            counts[v] = counts.get(v, 0) + 1
        top = sum(sorted(counts.values(), reverse=True)[: n // 10])
        assert top / (2 * count) > 0.5
        uniform = uniform_pairs(n, count, seed=3)
        ucounts: dict[int, int] = {}
        for u, v in uniform:
            ucounts[u] = ucounts.get(u, 0) + 1
            ucounts[v] = ucounts.get(v, 0) + 1
        utop = sum(sorted(ucounts.values(), reverse=True)[: n // 10])
        assert top > 2 * utop

    def test_zipf_pairs_zero_skew_is_uniform_shaped(self):
        pairs = zipf_pairs(200, 500, skew=0.0, seed=7)
        endpoints = {node for pair in pairs for node in pair}
        assert len(endpoints) > 150  # no concentration without skew

    def test_zipf_pairs_validation(self):
        with pytest.raises(ValueError):
            zipf_pairs(0, 10)
        with pytest.raises(ValueError):
            zipf_pairs(10, 10, skew=-1.0)

    def test_pair_workload_registry(self):
        assert sorted(WORKLOADS) == ["khop", "sibling", "uniform", "zipf"]
        assert pair_workload("uniform", 50, 20, seed=5) == uniform_pairs(50, 20, seed=5)
        assert pair_workload("zipf", 50, 20, seed=5, skew=1.5) == zipf_pairs(
            50, 20, skew=1.5, seed=5
        )
        with pytest.raises(KeyError):
            pair_workload("nope", 10, 5)
