"""Tests for the succinct support structures (bit vector, predecessor)."""

import pytest
from hypothesis import given, strategies as st

from repro.succinct.bitvector import BitVector
from repro.succinct.predecessor import PredecessorStructure


class TestBitVector:
    def test_basic_rank_select(self):
        vector = BitVector("10110100")
        assert vector.ones == 4
        assert vector.rank1(0) == 0
        assert vector.rank1(3) == 2
        assert vector.rank1(8) == 4
        assert vector.rank0(8) == 4
        assert vector.select1(1) == 0
        assert vector.select1(3) == 3
        assert vector.select0(1) == 1
        assert vector.select0(4) == 7

    def test_out_of_range(self):
        vector = BitVector("101")
        with pytest.raises(IndexError):
            vector.rank1(4)
        with pytest.raises(IndexError):
            vector.select1(3)
        with pytest.raises(IndexError):
            vector.select0(2)

    def test_accepts_lists_and_bits(self):
        from repro.encoding.bitio import Bits

        assert BitVector([1, 0, 1]).ones == 2
        assert BitVector(Bits("001")).ones == 1
        assert BitVector("").ones == 0

    def test_rejects_bad_characters(self):
        with pytest.raises(ValueError):
            BitVector("012")

    @given(st.lists(st.integers(min_value=0, max_value=1), max_size=400))
    def test_rank_matches_naive(self, bits):
        vector = BitVector(bits)
        prefix = 0
        for position, bit in enumerate(bits):
            assert vector.rank1(position) == prefix
            prefix += bit
        assert vector.rank1(len(bits)) == prefix

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=400))
    def test_select_inverts_rank(self, bits):
        vector = BitVector(bits)
        for k in range(1, vector.ones + 1):
            position = vector.select1(k)
            assert bits[position] == 1
            assert vector.rank1(position + 1) == k


class TestPredecessorStructure:
    def test_empty(self):
        structure = PredecessorStructure([])
        assert structure.successor(5) is None
        assert structure.predecessor(5) is None

    def test_basic_queries(self):
        structure = PredecessorStructure([3, 7, 7, 20, 41])
        assert structure.successor(0) == 3
        assert structure.successor(3) == 3
        assert structure.successor(8) == 20
        assert structure.successor(42) is None
        assert structure.predecessor(2) is None
        assert structure.predecessor(7) == 7
        assert structure.predecessor(100) == 41
        assert structure.successor_index(8) == 2
        assert 20 in structure
        assert 21 not in structure

    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), max_size=200),
        st.integers(min_value=0, max_value=10**6),
    )
    def test_matches_naive(self, values, query):
        structure = PredecessorStructure(values)
        expected_successor = min((v for v in values if v >= query), default=None)
        expected_predecessor = max((v for v in values if v <= query), default=None)
        assert structure.successor(query) == expected_successor
        assert structure.predecessor(query) == expected_predecessor
