"""Tests for the observability plane (:mod:`repro.obs`): log-spaced latency
histograms and their exact bucket-wise merge, request tracing end to end
over the wire, the Prometheus text exposition and the fleet's ``/metrics``
endpoint, the slow-query log and the SIGUSR2 profiling hook.

The acceptance-style tests pin the properties the plane exists for:

* fleet percentiles come from **merged histogram buckets**, so a
  restart-skewed fleet (short fresh reservoir vs. saturated veteran one)
  merges without over-weighting the restarted worker;
* a traced query's spans cover the named request stages and sum to within
  20% of the client-observed latency (made deterministic with an injected
  ``stall`` fault that dominates the timings);
* the metrics endpoint of a live 2-worker fleet under load reports
  ``repro_queries_total`` equal to the pairs the load generator pushed,
  with monotone histogram buckets;
* a traceless request encodes byte-identically to the pre-tracing wire
  format — old clients and servers interoperate unchanged.
"""

from __future__ import annotations

import asyncio
import math
import os
import pstats
import signal
import time
import urllib.request

import pytest

from repro.api import DistanceIndex
from repro.generators.workloads import make_tree, random_pairs
from repro.obs.hist import DEFAULT_BOUNDS_MS, Histogram, merge_histogram_dicts
from repro.obs.profile import install_profile_hook, parse_profile_spec, profile_path
from repro.obs.prom import MetricsServer, fleet_registry, render
from repro.obs.registry import Registry
from repro.obs.trace import STAGES, Span, Trace, TraceRecorder
from repro.serve import AsyncLabelClient, FleetSupervisor, LabelServer, protocol
from repro.serve.loadgen import run_load
from repro.serve.metrics import merge_fleet_stats, percentile


@pytest.fixture(scope="module")
def tree():
    return make_tree("random", 120, seed=3)


@pytest.fixture(scope="module")
def index(tree):
    return DistanceIndex.build(tree, "freedman")


@pytest.fixture(scope="module")
def store_file(tree, tmp_path_factory):
    path = tmp_path_factory.mktemp("obs") / "store.bin"
    DistanceIndex.build(tree, "freedman").save(path)
    return str(path)


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(target, handler, **server_kwargs):
    server = LabelServer(target, **server_kwargs)
    host, port = await server.start()
    try:
        client = await AsyncLabelClient.connect(host, port)
        try:
            return await handler(server, client, host, port)
        finally:
            await client.close()
    finally:
        await server.stop()


# -- histograms ---------------------------------------------------------------


def test_histogram_buckets_and_percentiles():
    hist = Histogram()
    assert hist.percentile(0.5) == 0.0  # empty
    for value in (0.005, 0.5, 0.5, 7.0, 1e9):  # 1e9 -> overflow bucket
        hist.observe(value)
    assert hist.total == 5
    assert hist.counts[0] == 1  # 0.005 <= first bound (0.01)
    assert hist.counts[-1] == 1  # overflow
    assert hist.sum == pytest.approx(1e9 + 8.005)
    # the p50 rank (3rd of 5) lands in the 0.5ms bucket: its upper bound
    p50 = hist.percentile(0.5)
    assert p50 >= 0.5 and p50 <= 0.5 * math.sqrt(2.0) + 1e-9
    # overflow samples report the largest finite bound, honestly saturated
    assert hist.percentile(1.0) == DEFAULT_BOUNDS_MS[-1]
    cumulative = hist.cumulative()
    assert cumulative == sorted(cumulative)
    assert cumulative[-1] == hist.total


def test_histogram_merge_is_exact_bucketwise_addition():
    left, right = Histogram(), Histogram()
    for value in (0.1, 1.0, 10.0):
        left.observe(value)
    for value in (1.0, 100.0):
        right.observe(value)
    left.merge(right)
    assert left.total == 5
    assert left.sum == pytest.approx(112.1)
    reference = Histogram()
    for value in (0.1, 1.0, 10.0, 1.0, 100.0):
        reference.observe(value)
    assert left.counts == reference.counts
    with pytest.raises(ValueError):
        left.merge(Histogram(bounds=(1.0, 2.0)))


def test_histogram_dict_round_trip_and_merge_helper():
    hist = Histogram()
    hist.observe_many(0.7, 41)
    rebuilt = Histogram.from_dict(hist.to_dict())
    assert rebuilt.counts == hist.counts
    assert rebuilt.total == hist.total
    assert rebuilt.sum == pytest.approx(hist.sum)
    merged = merge_histogram_dicts([hist.to_dict(), hist.to_dict()])
    assert merged.total == 82
    assert merge_histogram_dicts([]) is None
    with pytest.raises(ValueError):
        Histogram.from_dict({"bounds_ms": [1.0], "counts": [1, 2, 3]})


def test_histogram_bounds_validation():
    with pytest.raises(ValueError):
        Histogram(bounds=())
    with pytest.raises(ValueError):
        Histogram(bounds=(2.0, 1.0))


# -- nearest-rank percentile (satellite regression) ---------------------------


def test_percentile_nearest_rank_off_by_one_fixed():
    """p50 of [1, 2] is 1 under nearest-rank; the old ``int(f * n)`` indexing
    returned 2 (the element *after* the nearest rank)."""
    assert percentile([1.0, 2.0], 0.5) == 1.0
    assert percentile([2.0, 1.0], 0.5) == 1.0  # unsorted input
    assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == 2.0
    assert percentile([1.0, 2.0, 3.0], 0.0) == 1.0
    assert percentile([1.0, 2.0, 3.0], 1.0) == 3.0
    assert percentile([7.0], 0.99) == 7.0
    assert percentile([], 0.5) == 0.0
    # nearest rank of p99 over 200 samples is the 198th order statistic
    samples = [float(i) for i in range(1, 201)]
    assert percentile(samples, 0.99) == 198.0


def test_fleet_percentiles_from_merged_histograms_not_reservoirs():
    """Regression for restart skew: a veteran worker with a saturated
    reservoir (4096 of its 100k samples) and a freshly restarted worker
    whose short reservoir holds *every* sample.  Concatenating reservoirs
    would weight them 4096:64; merged buckets weight them 100_000:64."""
    veteran_hist = Histogram()
    veteran_hist.observe_many(1.0, 100_000)
    restarted_hist = Histogram()
    restarted_hist.observe_many(64.0, 64)

    def payload(worker, slot, hist, reservoir):
        return {
            "worker": worker,
            "slot": slot,
            "queries": hist.total,
            "latency_ms": {
                "p50": hist.percentile(0.5),
                "p99": hist.percentile(0.99),
                "samples": hist.total,
                "histogram": hist.to_dict(),
                "reservoir": reservoir,
            },
        }

    merged = merge_fleet_stats(
        [
            payload(100, 0, veteran_hist, [1.0] * 4096),
            payload(200, 1, restarted_hist, [64.0] * 64),
        ]
    )
    latency = merged["latency_ms"]
    # every worker is weighted by its true sample count
    assert latency["samples"] == 100_064
    # p50 AND p99 both sit in the veteran's ~1ms bucket (the restarted
    # worker's 64 samples are ~0.06% of the fleet); the concatenated
    # reservoir would have put p99 at 64ms.  The histogram answers with the
    # bucket's upper bound — a <= sqrt(2) quantisation of the true 1.0ms.
    assert latency["p50"] <= 1.0 * math.sqrt(2.0) + 1e-9
    assert latency["p99"] <= 1.0 * math.sqrt(2.0) + 1e-9
    assert percentile([1.0] * 4096 + [64.0] * 64, 0.99) == 64.0
    # and the merged histogram rides along for downstream consumers
    fleet = Histogram.from_dict(latency["histogram"])
    assert fleet.total == 100_064


def test_fleet_merge_falls_back_to_reservoirs_without_histograms():
    legacy = [
        {"worker": 1, "latency_ms": {"reservoir": [1.0, 2.0], "samples": 2}},
        {"worker": 2, "latency_ms": {"reservoir": [3.0], "samples": 1}},
    ]
    merged = merge_fleet_stats(legacy)
    assert merged["latency_ms"]["samples"] == 3
    assert merged["latency_ms"]["p50"] == 2.0
    assert "histogram" not in merged["latency_ms"]


# -- tracing primitives -------------------------------------------------------


def test_span_and_trace_shapes():
    with Span("decode") as span:
        pass
    assert span.ms >= 0.0
    canned = Span.completed("queue", 2.5)
    assert canned.to_dict() == {"stage": "queue", "ms": 2.5}
    trace = Trace(7, "query", "m", total_ms=10.0, attrs={"slot": 1})
    trace.add(canned)
    payload = trace.to_dict()
    assert payload["trace_id"] == 7
    assert payload["op"] == "query"
    assert payload["member"] == "m"
    assert payload["slot"] == 1
    assert payload["spans"] == [{"stage": "queue", "ms": 2.5}]


def test_trace_recorder_ring_and_slow_log():
    recorder = TraceRecorder(ring=4, slow_ms=5.0)
    for trace_id in range(10):
        recorder.record(Trace(trace_id, "query", "m", total_ms=float(trace_id)))
        logged = recorder.maybe_slow(float(trace_id), {"trace_id": trace_id})
        assert logged == (trace_id >= 5)
    snapshot = recorder.snapshot(limit=0, include_slow=True)
    assert snapshot["recorded"] == 10
    assert snapshot["ring"] == 4
    assert snapshot["slow_ms"] == 5.0
    # the ring holds only the newest 4, newest first
    assert [t["trace_id"] for t in snapshot["traces"]] == [9, 8, 7, 6]
    # the slow log kept every entry over the threshold, even ring-evicted ones
    assert snapshot["slow_recorded"] == 5
    assert {t["trace_id"] for t in snapshot["slow"]} == {5, 6, 7, 8, 9}
    assert snapshot["slow"][0] == {"trace_id": 9, "ms": 9.0}
    limited = recorder.snapshot(limit=2, include_slow=False)
    assert len(limited["traces"]) == 2
    assert "slow" not in limited
    # slow_ms=None disables the log entirely
    assert not TraceRecorder(ring=2).maybe_slow(1e9, {"trace_id": 0})
    with pytest.raises(ValueError):
        TraceRecorder(ring=0)


# -- wire format: additive tracing capability ---------------------------------


def test_traceless_requests_are_byte_identical():
    """A request without a trace id must encode exactly as it did before the
    tracing capability existed — old servers and clients interop unchanged."""
    plain = protocol.encode_query(7, 3, 42, "m")
    assert protocol.encode_query(7, 3, 42, "m", trace_id=None) == plain
    traced = protocol.encode_query(7, 3, 42, "m", trace_id=9)
    assert traced != plain
    assert traced[: len(traced) - 2].endswith(plain[1:])  # suffix is additive
    plain_batch = protocol.encode_batch(8, [(1, 2)], "")
    assert protocol.encode_batch(8, [(1, 2)], "", trace_id=None) == plain_batch


def test_tracing_feature_is_advertised(index):
    async def handler(server, client, host, port):
        info = await client.info()
        assert "tracing" in info["features"]

    _run(_with_server(index, handler))


# -- tracing end to end over the wire -----------------------------------------


def test_traced_query_spans_cover_stages_and_sum_to_latency(index, monkeypatch):
    """Acceptance: a traced query comes back with spans covering the named
    stages, summing to within 20% of the client-observed latency.  The
    injected 20ms dispatch stall dominates both sides of the comparison,
    making the bound robust to scheduler noise."""
    monkeypatch.setenv("REPRO_FAULTS", "stall:ms=20")

    async def handler(server, client, host, port):
        u, v = 0, 1
        trace_id = client.next_trace_id()
        started = time.perf_counter()
        await client.query(u, v, trace_id=trace_id)
        client_ms = (time.perf_counter() - started) * 1000.0
        snapshot = await client.trace(limit=0, slow=False)
        (trace,) = [t for t in snapshot["traces"] if t["trace_id"] == trace_id]
        stages = {span["stage"]: span["ms"] for span in trace["spans"]}
        assert set(stages) == set(STAGES)
        assert len(stages) >= 4
        assert stages["decode"] >= 20.0  # the stall fires inside decode
        span_sum = sum(stages.values())
        assert abs(span_sum - client_ms) <= 0.2 * client_ms
        assert trace["total_ms"] == pytest.approx(span_sum, rel=0.5)
        assert trace["u"] == u and trace["v"] == v
        assert trace["worker"] == os.getpid()

    _run(_with_server(index, handler))


def test_traced_batch_records_spans(index):
    async def handler(server, client, host, port):
        trace_id = client.next_trace_id()
        await client.batch([(0, 1), (2, 3)], trace_id=trace_id)
        snapshot = await client.trace(limit=0, slow=False)
        (trace,) = [t for t in snapshot["traces"] if t["trace_id"] == trace_id]
        assert trace["op"] == "batch"
        assert trace["pairs"] == 2
        stages = [span["stage"] for span in trace["spans"]]
        # BATCH runs synchronously: no coalescer queue stage
        assert stages == ["decode", "batch", "encode", "write"]

    _run(_with_server(index, handler))


def test_slow_query_log_over_the_wire(index, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "stall:ms=15")

    async def handler(server, client, host, port):
        trace_id = client.next_trace_id()
        await client.batch([(0, 1)], trace_id=trace_id)
        snapshot = await client.trace()
        assert snapshot["slow_ms"] == 1.0
        assert snapshot["slow_recorded"] >= 1
        entry = snapshot["slow"][0]
        assert entry["op"] == "batch"
        assert entry["trace_id"] == trace_id
        assert entry["ms"] >= 15.0

    _run(_with_server(index, handler, slow_ms=1.0))


def test_untraced_queries_record_nothing(index, tree):
    async def handler(server, client, host, port):
        pairs = random_pairs(tree, 20, seed=2)
        await client.pipeline(pairs, raw=True, window=8)
        snapshot = await client.trace()
        assert snapshot["recorded"] == 0
        assert snapshot["traces"] == []

    _run(_with_server(index, handler))


def test_detailed_stats_carry_stage_histograms(index, tree):
    async def handler(server, client, host, port):
        pairs = random_pairs(tree, 30, seed=4)
        await client.pipeline(pairs, raw=True, window=8)
        plain = await client.stats()
        assert "stages" not in plain
        assert "histogram" not in plain["latency_ms"]
        detail = await client.stats(detail=True)
        latency = Histogram.from_dict(detail["latency_ms"]["histogram"])
        assert latency.total == len(pairs)
        for stage in ("decode", "queue", "batch", "encode", "write"):
            hist = Histogram.from_dict(detail["stages"][stage])
            assert hist.total >= 1
        # decode counts every request; queue/batch count per coalesced query
        assert Histogram.from_dict(detail["stages"]["queue"]).total == len(pairs)

    _run(_with_server(index, handler))


# -- Prometheus exposition ----------------------------------------------------


def test_render_exposition_well_formed():
    registry = Registry()
    registry.counter("repro_queries_total", "Answers", 42)
    registry.gauge("repro_workers", "Workers", 2)
    registry.info("repro_store_info", "Store", generation='a"b\\c')
    hist = Histogram(bounds=(1.0, 2.0))
    hist.observe(0.5)
    hist.observe(1.5)
    hist.observe(99.0)
    registry.histogram("repro_request_latency_ms", "Latency", hist)
    text = render(registry)
    lines = text.strip().split("\n")
    assert "# TYPE repro_queries_total counter" in lines
    assert "repro_queries_total 42" in lines
    assert "# TYPE repro_store_info gauge" in lines  # info renders as gauge 1
    assert 'repro_store_info{generation="a\\"b\\\\c"} 1' in lines
    assert "# TYPE repro_request_latency_ms histogram" in lines
    assert 'repro_request_latency_ms_bucket{le="1"} 1' in lines
    assert 'repro_request_latency_ms_bucket{le="2"} 2' in lines
    assert 'repro_request_latency_ms_bucket{le="+Inf"} 3' in lines
    assert "repro_request_latency_ms_count 3" in lines
    assert text.endswith("\n")


def test_fleet_registry_exports_expected_series(index, tree):
    async def handler(server, client, host, port):
        pairs = random_pairs(tree, 25, seed=5)
        await client.pipeline(pairs, raw=True, window=8)
        return await client.stats(detail=True)

    stats = _run(_with_server(index, handler))
    stats.setdefault("store_generation", "cafe1234")
    text = render(fleet_registry(merge_fleet_stats([stats])))
    assert "repro_queries_total 25" in text
    assert 'repro_store_info{generation="cafe1234"} 1' in text
    assert "repro_kernel_info{tier=" in text
    assert 'repro_request_stage_ms_bucket{le="0.01",stage="decode"}' in text
    assert "repro_request_latency_ms_count 25" in text
    # every series carries the repro_ prefix
    for line in text.strip().split("\n"):
        if not line.startswith("#"):
            assert line.startswith("repro_"), line


def test_metrics_server_serves_and_reports_errors():
    payloads = iter(["repro_up 1\n", RuntimeError("scrape exploded")])

    def source():
        item = next(payloads)
        if isinstance(item, Exception):
            raise item
        return item

    server = MetricsServer(source)
    host, port = server.start()
    try:
        with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert response.read() == b"repro_up 1\n"
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"http://{host}:{port}/metrics")
        assert caught.value.code == 500
        with pytest.raises(urllib.error.HTTPError) as caught:
            urllib.request.urlopen(f"http://{host}:{port}/other")
        assert caught.value.code == 404
    finally:
        server.stop()


def _parse_samples(text: str) -> dict[str, float]:
    samples: dict[str, float] = {}
    for line in text.strip().split("\n"):
        if line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def test_fleet_metrics_endpoint_under_load(store_file, tree):
    """Acceptance: a 2-worker fleet with a metrics endpoint, loadgen pushing
    a known number of pairs, then one scrape — ``repro_queries_total`` must
    equal the pairs served and the latency buckets must be monotone."""
    pairs = 300
    supervisor = FleetSupervisor(store_file, workers=2, port=0)
    host, port = supervisor.start()
    try:
        metrics_host, metrics_port = supervisor.start_metrics(0)
        report = run_load(
            host, port, pairs=pairs, connections=4, window=32, trace_every=50
        )
        assert report["pairs"] == pairs
        # the loadgen sampled traces and folded a per-stage breakdown
        assert report["tracing"]["collected"] >= 1
        assert set(report["tracing"]["stages"]) <= set(STAGES)
        url = f"http://{metrics_host}:{metrics_port}/metrics"
        with urllib.request.urlopen(url) as response:
            assert response.status == 200
            text = response.read().decode("utf-8")
        samples = _parse_samples(text)
        assert samples["repro_queries_total"] == pairs
        assert samples["repro_workers"] == 2
        assert samples["repro_worker_up{slot=\"0\"}"] == 1
        assert samples["repro_worker_up{slot=\"1\"}"] == 1
        assert samples["repro_fleet_reloads_total"] == 0
        assert samples["repro_request_latency_ms_count"] == pairs
        assert "repro_store_info{" in text
        # cumulative buckets are monotone and end at the total count
        buckets = [
            value
            for name, value in samples.items()
            if name.startswith("repro_request_latency_ms_bucket")
        ]
        assert buckets == sorted(buckets)
        assert buckets[-1] == pairs
    finally:
        supervisor.shutdown()
    # the endpoint dies with the fleet
    with pytest.raises((ConnectionError, OSError)):
        urllib.request.urlopen(
            f"http://{metrics_host}:{metrics_port}/metrics", timeout=2
        )


# -- profiling hook -----------------------------------------------------------


def test_parse_profile_spec():
    assert parse_profile_spec("5") == (5.0, ".")
    assert parse_profile_spec("0.25:/tmp/profiles") == (0.25, "/tmp/profiles")
    with pytest.raises(ValueError):
        parse_profile_spec("0")
    with pytest.raises(ValueError):
        parse_profile_spec("nope")


@pytest.mark.skipif(not hasattr(signal, "SIGUSR2"), reason="needs SIGUSR2")
def test_profile_hook_dumps_pstats_on_sigusr2(index, tmp_path):
    dumps: list[str] = []

    async def scenario():
        loop = asyncio.get_running_loop()
        assert not install_profile_hook(loop, environ={})  # opt-in only
        armed = install_profile_hook(
            loop,
            slot=3,
            generation="feedbeef",
            environ={"REPRO_PROFILE": f"0.05:{tmp_path}"},
            on_dump=dumps.append,
        )
        assert armed
        os.kill(os.getpid(), signal.SIGUSR2)
        deadline = loop.time() + 5.0
        while not dumps and loop.time() < deadline:
            # some profiled work for the window to catch
            index.batch([(0, 1), (1, 2)], raw=True)
            await asyncio.sleep(0.01)
        loop.remove_signal_handler(signal.SIGUSR2)

    asyncio.run(scenario())
    assert dumps == [profile_path(str(tmp_path), 3, "feedbeef")]
    assert os.path.exists(dumps[0])
    stats = pstats.Stats(dumps[0])
    assert stats.total_calls >= 1
