"""Tests for the lower-bound instance families and the bound formulas."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.freedman import FreedmanScheme
from repro.core.kdistance import KDistanceScheme
from repro.lowerbounds.bounds import (
    approx_bound_bits,
    exact_lower_bound_bits,
    exact_upper_bound_bits,
    kdistance_large_bound_bits,
    kdistance_small_lower_bound_bits,
    kdistance_small_upper_bound_bits,
    summary_table,
    universal_tree_scheme_lower_bound_bits,
)
from repro.lowerbounds.hm_trees import (
    build_hm_tree,
    distinct_profile_count,
    enumerate_parameter_vectors,
    hm_parameter_count,
    hm_tree_size,
    lemma_2_3_bound_bits,
    leaf_distance_profile,
    random_hm_parameters,
    subdivide_to_unweighted,
)
from repro.lowerbounds.regular_trees import (
    build_regular_tree,
    common_labels_upper_bound,
    exact_pairwise_common_sum,
    lemma_4_1_total_bound,
    regular_tree_leaf_count,
    regular_tree_size,
    small_k_lower_bound_bits,
)
from repro.lowerbounds.stretched_trees import (
    build_stretched_hm_tree,
    stretch_factor,
    stretched_distance,
    stretched_intervals_disjoint,
)
from repro.oracles.distance_matrix import DistanceMatrix
from repro.oracles.exact_oracle import TreeDistanceOracle


class TestHMTrees:
    def test_parameter_count_and_size(self):
        assert hm_parameter_count(3) == 7
        assert hm_tree_size(3) == 22
        instance = build_hm_tree(3, 5, random_hm_parameters(3, 5, seed=1))
        assert instance.tree.n == 22
        assert len(instance.leaves) == 8

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            build_hm_tree(2, 4, [0, 1])
        with pytest.raises(ValueError):
            build_hm_tree(2, 4, [0, 1, 4])
        with pytest.raises(ValueError):
            build_hm_tree(2, 0, [])

    def test_leaves_equidistant_from_root(self):
        """In an (h, M)-tree every root-to-leaf path has weight exactly h*M."""
        for h, M in [(1, 3), (2, 4), (3, 5)]:
            instance = build_hm_tree(h, M, random_hm_parameters(h, M, seed=2))
            for leaf in instance.leaves:
                assert instance.tree.root_distance(leaf) == h * M

    def test_leaf_distances_are_even_and_bounded(self):
        instance = build_hm_tree(3, 4, random_hm_parameters(3, 4, seed=3))
        matrix = DistanceMatrix(instance.tree)
        for a in instance.leaves:
            for b in instance.leaves:
                if a != b:
                    assert matrix.distance(a, b) % 2 == 0
                    assert matrix.distance(a, b) <= 2 * 3 * 4

    def test_subdivision_preserves_leaf_distances(self):
        instance = build_hm_tree(2, 5, [1, 3, 0])
        unweighted, image = subdivide_to_unweighted(instance.tree)
        assert unweighted.is_unit_weighted()
        original = DistanceMatrix(instance.tree)
        new = DistanceMatrix(unweighted)
        for a in instance.leaves:
            for b in instance.leaves:
                assert original.distance(a, b) == new.distance(image[a], image[b])

    def test_lemma_2_3_bound(self):
        assert lemma_2_3_bound_bits(4, 16) == 8
        assert lemma_2_3_bound_bits(4, 1) == 0

    def test_parameter_enumeration(self):
        vectors = list(enumerate_parameter_vectors(1, 3))
        assert vectors == [[0], [1], [2]]
        assert len(list(enumerate_parameter_vectors(2, 2))) == 8
        assert len(list(enumerate_parameter_vectors(2, 2, limit=5))) == 5

    def test_distinct_profiles_force_many_labels(self):
        """Counting companion of Lemma 2.3: with h=1 each of the M parameter
        choices produces a distinct leaf-distance profile."""
        assert distinct_profile_count(1, 4) == 4
        assert distinct_profile_count(2, 2) >= 4

    def test_profiles_determine_parameters_h1(self):
        profiles = {}
        for vector in enumerate_parameter_vectors(1, 5):
            profile = leaf_distance_profile(build_hm_tree(1, 5, vector))
            assert profile not in profiles
            profiles[profile] = vector

    def test_freedman_labels_respect_lemma_2_3(self):
        """Our upper-bound labels on subdivided (h, M)-trees are of course at
        least as long as the information-theoretic lower bound."""
        for h, M in [(2, 8), (3, 8), (4, 16)]:
            instance = build_hm_tree(h, M, random_hm_parameters(h, M, seed=4))
            unweighted, image = subdivide_to_unweighted(instance.tree)
            labels = FreedmanScheme().encode(unweighted)
            leaf_bits = max(labels[image[leaf]].bit_length() for leaf in instance.leaves)
            assert leaf_bits >= lemma_2_3_bound_bits(h, M)


class TestRegularTrees:
    def test_leaf_count_independent_of_x(self):
        for x in ([1, 2], [2, 2], [2, 1]):
            tree = build_regular_tree(x, h=2, d=2)
            leaves = [v for v in tree.nodes() if tree.is_leaf(v)]
            assert len(leaves) == regular_tree_leaf_count(2, 2, 2) == 16

    def test_size_formula(self):
        x = [1, 2]
        tree = build_regular_tree(x, h=2, d=2)
        assert tree.n == regular_tree_size(x, 2, 2)

    def test_degrees_follow_vector(self):
        tree = build_regular_tree([1], h=3, d=2)
        # depth-0 nodes have degree d^1 = 2, depth-1 nodes degree d^{3-1} = 4
        assert tree.degree(tree.root) == 2
        for child in tree.children(tree.root):
            assert tree.degree(child) == 4

    def test_rejects_bad_x(self):
        with pytest.raises(ValueError):
            build_regular_tree([0], h=2, d=2)
        with pytest.raises(ValueError):
            build_regular_tree([3], h=2, d=2)

    def test_lemma_4_1_bound_dominates_exact_sum(self):
        for h, d, k in [(2, 2, 1), (2, 2, 2), (3, 2, 1), (2, 3, 2), (3, 3, 1)]:
            assert exact_pairwise_common_sum(h, d, k) <= lemma_4_1_total_bound(h, d, k) + 1e-6

    def test_common_labels_upper_bound_symmetric(self):
        assert common_labels_upper_bound([1, 2], [2, 1], 2, 2) == common_labels_upper_bound(
            [2, 1], [1, 2], 2, 2
        )

    def test_common_bound_maximised_on_equal_vectors(self):
        same = common_labels_upper_bound([2, 2], [2, 2], 3, 2)
        different = common_labels_upper_bound([2, 2], [1, 3], 3, 2)
        assert same >= different

    def test_kdistance_labels_on_regular_trees(self):
        tree = build_regular_tree([1, 2], h=2, d=2)
        oracle = TreeDistanceOracle(tree)
        scheme = KDistanceScheme(4)
        labels = scheme.encode(tree)
        rng = random.Random(0)
        for _ in range(200):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            expected = oracle.distance(u, v)
            expected = expected if expected <= 4 else None
            assert scheme.bounded_distance(labels[u], labels[v]) == expected

    def test_small_k_lower_bound_shape(self):
        assert small_k_lower_bound_bits(1 << 20, 2) > math.log2(1 << 20)
        assert small_k_lower_bound_bits(2, 1) == 0.0


class TestStretchedTrees:
    def test_stretch_factor(self):
        assert stretch_factor(1.0, 3) == 8
        assert stretch_factor(0.5, 0) == 1

    def test_stretched_distance_monotone(self):
        for eps in (1.0, 0.5, 0.1):
            values = [stretched_distance(j, eps) for j in range(1, 10)]
            assert values == sorted(values)
            assert all(v > 0 for v in values)

    @given(st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_intervals_disjoint_property(self, eps):
        """Section 5.1: the (1+eps)-blown-up intervals never overlap."""
        assert stretched_intervals_disjoint(eps, max_j=25)

    def test_build_stretched_tree_distances(self):
        h, M, eps = 2, 2, 1.0
        parameters = [1, 0, 1]
        stretched, leaf_images = build_stretched_hm_tree(h, M, parameters, eps)
        assert stretched.is_unit_weighted()
        # leaves at original distance 2j must now be at distance f(j)
        instance = build_hm_tree(h, M, parameters)
        original = DistanceMatrix(instance.tree)
        new = DistanceMatrix(stretched)
        for i, a in enumerate(instance.leaves):
            for j, b in enumerate(instance.leaves):
                if a == b:
                    continue
                original_halved = original.distance(a, b) // 2
                assert new.distance(leaf_images[i], leaf_images[j]) == stretched_distance(
                    original_halved, eps
                )

    def test_approximation_reveals_exact_distance(self):
        """A (1+eps)-approximate answer on the stretched tree identifies the
        original distance because the intervals are disjoint."""
        eps = 0.5
        values = [stretched_distance(j, eps) for j in range(1, 15)]
        for j, value in enumerate(values, start=1):
            blurred = value * (1 + eps)
            matches = [jj for jj, v in enumerate(values, start=1) if v <= blurred and blurred < (values[jj] if jj < len(values) else float("inf"))]
            assert j in matches
            assert all(m <= j for m in matches) or matches == [j]


class TestBoundFormulas:
    def test_exact_bounds_ordering(self):
        for n in (1 << 10, 1 << 16, 1 << 24):
            assert exact_lower_bound_bits(n) <= exact_upper_bound_bits(n)
            # the separation from universal-tree schemes kicks in for large n
            if n >= (1 << 24):
                assert exact_upper_bound_bits(n) < universal_tree_scheme_lower_bound_bits(n)

    def test_separation_asymptotics(self):
        """1/4 log² n eventually beats the universal-tree barrier."""
        n = 1 << 40
        assert exact_upper_bound_bits(n) < universal_tree_scheme_lower_bound_bits(n)

    def test_kdistance_regimes(self):
        n = 1 << 16
        assert kdistance_small_upper_bound_bits(n, 2) >= math.log2(n)
        assert kdistance_small_lower_bound_bits(n, 2) >= math.log2(n)
        assert kdistance_large_bound_bits(n, 16 * 16) > 0

    def test_approx_bound_monotone_in_inverse_eps(self):
        n = 1 << 16
        assert approx_bound_bits(n, 0.01) > approx_bound_bits(n, 0.1) > 0
        with pytest.raises(ValueError):
            approx_bound_bits(n, 0.0)

    def test_summary_table_contains_all_rows(self):
        table = summary_table(1 << 12, 4, 0.5)
        assert "exact" in table and "approximate" in table
        assert any(key.startswith("k-distance") for key in table)
        table_large = summary_table(1 << 12, 1 << 10, 0.5)
        assert any("k >= log n" in key for key in table_large)
