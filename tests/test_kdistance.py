"""Tests for the k-distance labeling scheme (Section 4)."""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.kdistance import (
    COMPACT,
    SIMPLE,
    KDistanceLabel,
    KDistanceScheme,
    floor_log2,
    range_height,
    range_identifier,
)
from repro.generators.workloads import make_tree
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree

from repro.testing import parent_array_trees


def expected_answer(oracle, u, v, k):
    distance = oracle.distance(u, v)
    return distance if distance <= k else None


class TestRangeIdentifiers:
    def test_range_height(self):
        assert range_height(5, 5) == 0
        assert range_height(4, 5) == 1
        assert range_height(4, 7) == 2
        assert range_height(3, 4) == 3

    def test_identifier_distinguishes_heights(self):
        # Observation 4.2: identifiers of disjoint ranges differ
        assert range_identifier(4, 2) != range_identifier(4, 3)
        assert range_identifier(0, 1) != range_identifier(2, 1)

    def test_identifier_computable_from_any_member(self):
        # all members of the trie node [4, 7] give the same identifier
        height = range_height(4, 7)
        identifiers = {range_identifier(x, height) for x in range(4, 8)}
        assert len(identifiers) == 1

    @given(st.integers(min_value=0, max_value=2000), st.integers(min_value=0, max_value=2000))
    def test_disjoint_ranges_have_distinct_identifiers(self, a, b):
        low_a, high_a = min(a, b), min(a, b)
        low_b = max(a, b) + 1
        high_b = low_b + 3
        id_a = (range_height(low_a, high_a), range_identifier(low_a, range_height(low_a, high_a)))
        id_b = (range_height(low_b, high_b), range_identifier(low_b, range_height(low_b, high_b)))
        assert id_a != id_b

    def test_floor_log2(self):
        assert floor_log2(1) == 0
        assert floor_log2(2) == 1
        assert floor_log2(3) == 1
        assert floor_log2(1024) == 10
        with pytest.raises(ValueError):
            floor_log2(0)

    def test_identifiers_increase_along_heavy_paths(self):
        """The Section 4.3 monotonicity the Lemma 4.5 machinery relies on."""
        for family in ("random", "path", "caterpillar", "balanced_binary"):
            tree = make_tree(family, 300, seed=1)
            decomposition = HeavyPathDecomposition(tree)
            order = decomposition.preorder_with_heavy_child_last()
            pre = {node: index for index, node in enumerate(order)}
            for path in decomposition.paths():
                previous = None
                for node in path:
                    heavy = decomposition.heavy_child(node)
                    light_size = tree.subtree_size(node) - (
                        tree.subtree_size(heavy) if heavy is not None else 0
                    )
                    height = range_height(pre[node], pre[node] + light_size - 1)
                    identifier = range_identifier(pre[node], height)
                    if previous is not None:
                        assert identifier > previous
                    previous = identifier


class TestSchemeBasics:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KDistanceScheme(0)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError):
            KDistanceScheme(3, mode="bogus")

    def test_rejects_weighted_trees(self):
        tree = RootedTree([None, 0], [0, 3])
        with pytest.raises(ValueError):
            KDistanceScheme(2).encode(tree)

    def test_identical_nodes(self):
        tree = make_tree("random", 30, seed=0)
        scheme = KDistanceScheme(3)
        labels = scheme.encode(tree)
        for node in tree.nodes():
            assert scheme.bounded_distance(labels[node], labels[node]) == 0

    def test_serialisation_round_trip(self):
        tree = make_tree("random", 80, seed=2)
        scheme = KDistanceScheme(4)
        oracle = TreeDistanceOracle(tree)
        labels = scheme.encode(tree)
        rng = random.Random(0)
        for _ in range(100):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            restored_u = KDistanceLabel.from_bits(labels[u].to_bits())
            restored_v = scheme.parse(labels[v].to_bits())
            assert scheme.bounded_distance(restored_u, restored_v) == expected_answer(
                oracle, u, v, 4
            )

    def test_bounded_distance_from_bits(self):
        tree = make_tree("caterpillar", 50, seed=1)
        scheme = KDistanceScheme(5)
        oracle = TreeDistanceOracle(tree)
        labels = scheme.encode(tree)
        for u, v in [(0, 1), (0, 49), (10, 12), (3, 3)]:
            assert scheme.bounded_distance_from_bits(
                labels[u].to_bits(), labels[v].to_bits()
            ) == expected_answer(oracle, u, v, 5)


class TestExhaustiveSmallTrees:
    @pytest.mark.parametrize("family", ["path", "star", "caterpillar", "balanced_binary", "spider"])
    @pytest.mark.parametrize("k", [1, 2, 3, 6])
    def test_all_pairs(self, family, k):
        tree = make_tree(family, 25, seed=1)
        oracle = TreeDistanceOracle(tree)
        scheme = KDistanceScheme(k)
        labels = scheme.encode(tree)
        for u in tree.nodes():
            for v in tree.nodes():
                assert scheme.bounded_distance(labels[u], labels[v]) == expected_answer(
                    oracle, u, v, k
                ), (family, k, u, v)


class TestModes:
    def test_auto_mode_picks_regime(self):
        scheme_small_k = KDistanceScheme(2)
        labels = scheme_small_k.encode(make_tree("random", 256, seed=3))
        assert all(label.compact for label in labels.values())

        scheme_large_k = KDistanceScheme(64)
        labels = scheme_large_k.encode(make_tree("random", 256, seed=3))
        assert all(not label.compact for label in labels.values())

    @pytest.mark.parametrize("mode", [COMPACT, SIMPLE])
    @pytest.mark.parametrize("k", [2, 5, 11])
    def test_forced_modes_are_correct(self, mode, k):
        tree = make_tree("random", 120, seed=4)
        oracle = TreeDistanceOracle(tree)
        scheme = KDistanceScheme(k, mode=mode)
        labels = scheme.encode(tree)
        rng = random.Random(1)
        for _ in range(300):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert scheme.bounded_distance(labels[u], labels[v]) == expected_answer(
                oracle, u, v, k
            )

    def test_compact_on_deep_paths_uses_lemma_4_5(self):
        """On a long path with small k, alphas are capped and the
        2-approximation tables must resolve the within-path distances."""
        tree = make_tree("path", 400)
        k = 3
        scheme = KDistanceScheme(k, mode=COMPACT)
        labels = scheme.encode(tree)
        capped = sum(1 for label in labels.values() if label.alpha == 2 * k + 1)
        assert capped > 0
        oracle = TreeDistanceOracle(tree)
        for u in range(0, 400, 7):
            for v in range(u, min(400, u + 12)):
                assert scheme.bounded_distance(labels[u], labels[v]) == expected_answer(
                    oracle, u, v, k
                )


class TestAdversarialShapes:
    @pytest.mark.parametrize("family", ["path", "broom", "random_caterpillar", "random", "star"])
    @pytest.mark.parametrize("k", [2, 8, 40])
    def test_random_queries(self, family, k):
        tree = make_tree(family, 350, seed=5)
        oracle = TreeDistanceOracle(tree)
        scheme = KDistanceScheme(k)
        labels = scheme.encode(tree)
        rng = random.Random(2)
        for _ in range(400):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert scheme.bounded_distance(labels[u], labels[v]) == expected_answer(
                oracle, u, v, k
            )


class TestProperties:
    @given(parent_array_trees(max_nodes=40), st.integers(min_value=1, max_value=12))
    @settings(max_examples=50, deadline=None)
    def test_matches_oracle(self, tree, k):
        oracle = TreeDistanceOracle(tree)
        scheme = KDistanceScheme(k)
        labels = scheme.encode(tree)
        rng = random.Random(3)
        for _ in range(40):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert scheme.bounded_distance(labels[u], labels[v]) == expected_answer(
                oracle, u, v, k
            )

    @given(parent_array_trees(max_nodes=30), st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, tree, k):
        scheme = KDistanceScheme(k)
        labels = scheme.encode(tree)
        rng = random.Random(4)
        for _ in range(30):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert scheme.bounded_distance(labels[u], labels[v]) == scheme.bounded_distance(
                labels[v], labels[u]
            )


class TestLabelSizes:
    def test_small_k_close_to_log_n_plus_term(self):
        n = 4096
        tree = make_tree("random", n, seed=6)
        for k in (1, 2, 4, 8):
            labels = KDistanceScheme(k).encode(tree)
            max_bits = max(label.bit_length() for label in labels.values())
            bound = math.log2(n) + 14 * k * math.log2(max(math.log2(n) / k, 2)) + 64
            assert max_bits <= bound, (k, max_bits, bound)

    def test_large_k_stays_polylogarithmic(self):
        n = 2048
        tree = make_tree("random", n, seed=7)
        for k in (int(math.log2(n)), 4 * int(math.log2(n)), n):
            labels = KDistanceScheme(k).encode(tree)
            max_bits = max(label.bit_length() for label in labels.values())
            assert max_bits <= 40 * math.log2(n) * math.log2(max(k / math.log2(n), 2)) + 120
