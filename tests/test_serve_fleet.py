"""Tests for the self-healing fleet: restart-on-crash supervision, rolling
drain-and-replace reloads, the fault-injection harness and the clients'
reconnect-on-EOF behaviour.

Everything here is deterministic: worker deaths come from SIGKILL or from
injected ``REPRO_FAULTS`` clauses (inherited by forked workers through the
environment), never from timing luck.  Crash faults are only ever enabled
for *forked* workers — an in-process ``os._exit`` would take pytest with
it — while the ``stall`` kind is exercised in-process.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.api import DistanceIndex
from repro.generators.workloads import make_tree, random_pairs
from repro.serve import (
    FleetCrashLoop,
    FleetSupervisor,
    LabelClient,
    RestartPolicy,
    ServingCore,
    protocol,
    store_generation,
)
from repro.serve.faults import (
    CRASH_EXIT_CODE,
    FaultSpecError,
    parse_faults,
    plan_for,
)
from repro.serve.metrics import merge_fleet_stats, percentile
from repro.serve.retry import backoff_delay


@pytest.fixture(scope="module")
def tree():
    return make_tree("random", 120, seed=11)


@pytest.fixture(scope="module")
def index(tree):
    return DistanceIndex.build(tree, "freedman")


@pytest.fixture(scope="module")
def store_file(tree, tmp_path_factory):
    path = tmp_path_factory.mktemp("selfheal") / "store_a.bin"
    DistanceIndex.build(tree, "freedman").save(path)
    return str(path)


@pytest.fixture(scope="module")
def store_file_b(tree, tmp_path_factory):
    """The same tree under a different exact scheme: identical answers,
    different bytes — a rolling reload must flip the generation without
    changing a single response."""
    path = tmp_path_factory.mktemp("selfheal") / "store_b.bin"
    DistanceIndex.build(tree, "alstrup").save(path)
    return str(path)


# -- retry / restart policy ----------------------------------------------------


def test_backoff_delay_grows_and_caps():
    lows = [backoff_delay(attempt, 0, base_delay=0.01, max_delay=0.1) for attempt in range(1, 12)]
    assert all(delay > 0 for delay in lows)
    # cap: even with huge attempts the pre-jitter delay is max_delay
    assert max(lows) <= 0.1 * 1.5 + 1e-9


def test_restart_policy_crash_loop_threshold():
    policy = RestartPolicy(max_restarts=3, window_seconds=10.0)
    assert not policy.is_crash_loop(3)
    assert policy.is_crash_loop(4)
    assert policy.describe() == {"max_restarts": 3, "window_seconds": 10.0}
    with pytest.raises(ValueError):
        RestartPolicy(max_restarts=0)
    with pytest.raises(ValueError):
        RestartPolicy(window_seconds=0)


# -- fault spec parsing --------------------------------------------------------


def test_parse_faults_clauses():
    clauses = parse_faults("crash:p=0.25:at=accept:slot=2,stall:ms=50,exit:after=250:code=9")
    crash, stall, exit_clause = clauses
    assert (crash.kind, crash.p, crash.at, crash.slot) == ("crash", 0.25, "accept", 2)
    assert crash.code == CRASH_EXIT_CODE
    assert (stall.kind, stall.ms, stall.at, stall.slot) == ("stall", 50.0, "dispatch", None)
    assert (exit_clause.kind, exit_clause.after_ms, exit_clause.code) == ("exit", 250.0, 9)
    assert parse_faults("") == []


@pytest.mark.parametrize(
    "spec",
    [
        "explode",  # unknown kind
        "crash:p=2",  # probability out of range
        "crash:at=nowhere",  # unknown point
        "crash:frequency=2",  # unknown parameter
        "crash:p",  # not key=value
    ],
)
def test_parse_faults_rejects_bad_specs(spec):
    with pytest.raises(FaultSpecError):
        parse_faults(spec)


def test_plan_for_filters_slots(monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "stall:ms=1:slot=3,exit:after=9:slot=1")
    assert plan_for(0) is None  # every clause scoped to another slot
    plan = plan_for(3)
    assert [clause.kind for clause in plan.clauses] == ["stall"]
    exit_plan = plan_for(1)
    assert exit_plan.exit_clause().after_ms == 9.0
    monkeypatch.delenv("REPRO_FAULTS")
    assert plan_for(0) is None


def test_stall_fault_delays_dispatch_in_process(monkeypatch, index):
    """The ``stall`` kind is safe in-process: dispatch blocks for ``ms``."""
    monkeypatch.setenv("REPRO_FAULTS", "stall:ms=40")
    core = ServingCore(index)
    frames: list[bytes] = []

    class Conn:
        def send(self, data):
            frames.append(data)

    decoder = protocol.FrameDecoder()
    decoder.feed(protocol.encode_info(1))
    (body,) = decoder.frames()
    started = time.perf_counter()
    core.handle_request(Conn(), body)
    assert time.perf_counter() - started >= 0.035
    assert frames  # the request was still answered after the stall


# -- store generation ----------------------------------------------------------


def test_store_generation_tracks_content(store_file, store_file_b, tmp_path):
    gen_a = store_generation(store_file)
    assert gen_a == store_generation(store_file)  # deterministic
    assert gen_a["bytes"] == os.path.getsize(store_file)
    gen_b = store_generation(store_file_b)
    assert gen_a["generation"] != gen_b["generation"]
    # a byte-identical copy under another path shares the generation hash
    copy = tmp_path / "copy.bin"
    copy.write_bytes(open(store_file, "rb").read())
    assert store_generation(str(copy))["generation"] == gen_a["generation"]


# -- stats merging with heterogeneous payloads ---------------------------------


def _stats_payload(worker, *, queries=0, reservoir=(), slot=0, restarts=0, **extra):
    payload = {
        "worker": worker,
        "slot": slot,
        "restarts": restarts,
        "queries": queries,
        "flushes": queries,
        "coalesced_queries": queries,
        "uptime_seconds": extra.pop("uptime_seconds", 5.0),
        "qps": extra.pop("qps", 0.0),
        "latency_ms": {
            "p50": percentile(list(reservoir), 0.5),
            "p99": percentile(list(reservoir), 0.99),
            "samples": len(reservoir),
            "reservoir": list(reservoir),
        },
    }
    payload.update(extra)
    return payload


def test_merge_fleet_stats_heterogeneous_reservoirs():
    """A restarted worker (short reservoir) and a just-born worker (empty
    payload, no reservoir at all) must merge without skewing percentiles."""
    veteran = _stats_payload(100, queries=900, reservoir=[1.0] * 90, slot=0)
    restarted = _stats_payload(200, queries=10, reservoir=[9.0] * 3, slot=1, restarts=2)
    newborn = {"worker": 300, "slot": 2, "restarts": 1}  # no latency block at all
    merged = merge_fleet_stats([veteran, restarted, newborn])
    assert merged["workers"] == 3
    assert merged["queries"] == 910
    assert merged["restarts"] == 3  # summed across one snapshot per slot
    assert merged["latency_ms"]["samples"] == 93
    # nearest-rank over the concatenation: the three 9ms samples live in the
    # tail, so p50 stays at the veteran's 1ms — never an average of p50s
    assert merged["latency_ms"]["p50"] == 1.0
    rows = {row["slot"]: row for row in merged["per_worker"]}
    assert rows[1]["restarts"] == 2
    assert rows[2]["restarts"] == 1
    assert rows[0]["uptime_seconds"] == 5.0


def test_merge_fleet_stats_generation_visibility():
    same = [
        _stats_payload(1, store_generation="aaaa"),
        _stats_payload(2, store_generation="aaaa"),
    ]
    assert merge_fleet_stats(same)["store_generation"] == "aaaa"
    mixed = [
        _stats_payload(1, store_generation="aaaa"),
        _stats_payload(2, store_generation="bbbb"),
    ]
    assert merge_fleet_stats(mixed)["store_generation"] == "aaaa,bbbb"
    assert "store_generation" not in merge_fleet_stats([_stats_payload(1)])


# -- supervision: restart-on-crash ---------------------------------------------


def _probe_merged_stats(host, port, probes=8):
    payloads = []
    clients = [LabelClient(host, port) for _ in range(probes)]
    try:
        for client in clients:
            payloads.append(client.stats(reservoir=True))
    finally:
        for client in clients:
            client.close()
    return merge_fleet_stats(payloads)


def test_supervisor_restarts_sigkilled_worker(store_file, tree, index):
    """Scenario (a): SIGKILL the exact worker a client is attached to; the
    supervisor re-forks it, the client reconnects, and not one request
    fails.  The restart is visible in merged fleet STATS."""
    supervisor = FleetSupervisor(
        store_file,
        workers=2,
        port=0,
        restart_policy=RestartPolicy(base_delay=0.02, max_delay=0.1),
    )
    host, port = supervisor.start()
    stop = threading.Event()
    loop = threading.Thread(
        target=supervisor.supervise,
        kwargs={"stop_check": stop.is_set, "interval": 0.02},
        daemon=True,
    )
    loop.start()
    pairs = random_pairs(tree, 150, seed=31)
    expected = index.batch(pairs, raw=True)
    try:
        with LabelClient(host, port) as client:
            victim = client.stats()["worker"]
            assert victim in supervisor.pids
            os.kill(victim, signal.SIGKILL)
            # every request still converges: the client reconnects (to the
            # sibling or to the replacement) and retries
            assert client.pipeline(pairs, raw=True, window=32) == expected
            assert client.query(*pairs[0], raw=True) == expected[0]
            assert client.reconnects >= 1
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if supervisor.total_restarts == 1 and supervisor.poll():
                break
            time.sleep(0.02)
        assert supervisor.total_restarts == 1
        assert supervisor.poll()  # both slots alive again
        assert victim not in supervisor.pids
        # the restart shows up in worker-reported STATS once a probe lands
        # on the replacement; 8 probes across 2 workers make that certain
        # enough to poll for
        deadline = time.monotonic() + 10
        merged = None
        while time.monotonic() < deadline:
            merged = _probe_merged_stats(host, port)
            if merged.get("restarts") == 1:
                break
            time.sleep(0.05)
        assert merged["restarts"] == 1
        status = supervisor.fleet_status()
        assert status["restarts"] == 1
        (restarted,) = [row for row in status["slots"] if row["restarts"] == 1]
        assert restarted["alive"] and restarted["last_exit_code"] is not None
    finally:
        stop.set()
        loop.join(timeout=10)
        fleet = supervisor.shutdown()
    assert fleet["restarts"] == 1
    assert not supervisor.poll()


def test_supervisor_gives_up_on_crash_loop(store_file, monkeypatch):
    """Scenario (b): a worker that deterministically dies after becoming
    ready exhausts the restart budget; the supervisor tears the fleet down
    and raises instead of flapping forever."""
    monkeypatch.setenv("REPRO_FAULTS", "exit:after=40")
    supervisor = FleetSupervisor(
        store_file,
        workers=1,
        port=0,
        restart_policy=RestartPolicy(
            max_restarts=2, window_seconds=30.0, base_delay=0.01, max_delay=0.05
        ),
    )
    supervisor.start()
    started = time.monotonic()
    with pytest.raises(FleetCrashLoop) as caught:
        supervisor.supervise(interval=0.02)
    assert time.monotonic() - started < 20
    crash_loop = caught.value
    assert crash_loop.diagnostic["slot"] == 0
    assert crash_loop.diagnostic["deaths_in_window"] == 3  # budget of 2 + 1
    assert set(crash_loop.diagnostic["exit_codes"]) == {CRASH_EXIT_CODE}
    assert "crash-looped" in str(crash_loop)
    # controlled teardown already happened inside supervise()
    assert not supervisor.poll()
    assert supervisor.pids == []
    assert supervisor.total_restarts == 2


def test_start_failure_names_the_slot_that_died(store_file, monkeypatch):
    """Satellite regression: with three workers starting and only slot 1
    crashing before its handshake, the error must blame slot 1 — not
    whichever sibling a shared deadline happened to be polling — and the
    already-ready siblings must be torn down, not leaked."""
    monkeypatch.setenv("REPRO_FAULTS", "crash:at=start:slot=1")
    supervisor = FleetSupervisor(store_file, workers=3, port=0)
    with pytest.raises(RuntimeError, match=r"slot 1 .*died before becoming ready"):
        supervisor.start()
    assert supervisor.pids == []
    assert not supervisor.poll()


def test_injected_dispatch_crash_is_healed(store_file, tree, index, monkeypatch):
    """A fault-injected crash on the Nth dispatch (the REPRO_FAULTS harness
    end to end): the worker dies mid-conversation, the supervisor re-forks
    it, and the client's answers stay correct throughout."""
    monkeypatch.setenv("REPRO_FAULTS", "crash:p=1:at=accept:slot=0")
    # slot 0 dies whenever a connection reaches it; slot 1 is healthy.  The
    # client retries until the kernel lands it on slot 1, while the
    # supervisor keeps re-forking slot 0 — both sides of self-healing at
    # once.  A generous budget absorbs repeated unlucky balancing.
    supervisor = FleetSupervisor(
        store_file,
        workers=2,
        port=0,
        restart_policy=RestartPolicy(
            max_restarts=50, window_seconds=60.0, base_delay=0.01, max_delay=0.05
        ),
    )
    host, port = supervisor.start()
    stop = threading.Event()
    loop = threading.Thread(
        target=supervisor.supervise,
        kwargs={"stop_check": stop.is_set, "interval": 0.02},
        daemon=True,
    )
    loop.start()
    pairs = random_pairs(tree, 40, seed=5)
    try:
        with LabelClient(host, port, reconnect_retries=30) as client:
            assert client.batch(pairs, raw=True) == index.batch(pairs, raw=True)
    finally:
        stop.set()
        loop.join(timeout=10)
        supervisor.shutdown()


# -- rolling reload ------------------------------------------------------------


def test_rolling_reload_under_continuous_load(store_file, store_file_b, tree, index):
    """Scenario (c): reload() to a re-encoded store while a client keeps
    querying.  Zero dropped or wrong responses, and afterwards every worker
    reports the new generation in INFO."""
    supervisor = FleetSupervisor(store_file, workers=2, port=0)
    host, port = supervisor.start()
    old_generation = supervisor.generation["generation"]
    pairs = random_pairs(tree, 80, seed=17)
    expected = index.batch(pairs, raw=True)

    failures: list[BaseException] = []
    rounds = [0]
    stop = threading.Event()

    def hammer():
        try:
            with LabelClient(host, port) as client:
                while not stop.is_set():
                    if client.pipeline(pairs, raw=True, window=32) != expected:
                        raise AssertionError("wrong answers during reload")
                    rounds[0] += 1
        except BaseException as error:  # noqa: BLE001 - recorded for the assert
            failures.append(error)

    load = threading.Thread(target=hammer, daemon=True)
    load.start()
    try:
        while rounds[0] == 0 and load.is_alive():  # load is demonstrably flowing
            time.sleep(0.01)
        generation = supervisor.reload(store_file_b)
        assert generation["generation"] != old_generation
        assert generation["generation"] == store_generation(store_file_b)["generation"]
        rounds_after_reload = rounds[0]
        while rounds[0] <= rounds_after_reload and load.is_alive():
            time.sleep(0.01)  # at least one full pass against the new fleet
    finally:
        stop.set()
        load.join(timeout=30)
    assert not failures, f"load saw failures during rolling reload: {failures!r}"
    assert rounds[0] >= 2

    # every probe-visible worker now serves the new generation
    seen: dict[int, str] = {}
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline and len(seen) < 2:
        with LabelClient(host, port) as probe:
            info = probe.info()
            seen[info["worker"]] = info["store"]["generation"]
    assert len(seen) == 2
    assert set(seen.values()) == {generation["generation"]}

    fleet = supervisor.shutdown()
    assert fleet["reloads"] == 1
    assert fleet["exit_codes"] == [0, 0]
    # retired workers' final stats were folded in: the fleet summary has
    # lifetime queries from before AND after the replacement
    assert fleet["queries"] >= len(pairs) * 2


def test_traced_queries_survive_rolling_reload(store_file, store_file_b, tree, index):
    """Trace propagation across reconnect-on-EOF and a rolling reload: a
    traced pipelined round issued *after* the fleet rolled must come back
    with complete per-stage spans stamped with the **new** store
    generation — the trace ring lives in the replacement worker, and the
    client reached it through at least one reconnect."""
    supervisor = FleetSupervisor(store_file, workers=2, port=0)
    host, port = supervisor.start()
    old_generation = supervisor.generation["generation"]
    pairs = random_pairs(tree, 60, seed=23)
    expected = index.batch(pairs, raw=True)
    try:
        with LabelClient(host, port) as client:
            # a traced warm-up round against the old fleet pins the old
            # generation into the pre-reload spans
            assert client.pipeline(pairs, raw=True, window=16, trace_every=10) == expected
            pre_ids = set(client.traced_ids)

            generation = supervisor.reload(store_file_b)["generation"]
            assert generation != old_generation

            # the old workers drained away: the next round hits EOF and
            # reconnects (its re-issued requests are deliberately
            # untraced — a retry must never double-record)
            assert client.pipeline(pairs, raw=True, window=16, trace_every=10) == expected
            assert client.reconnects >= 1

            # a traced round on the settled connection lands in the
            # replacement worker's ring
            assert client.pipeline(pairs, raw=True, window=16, trace_every=10) == expected
            post_ids = set(client.traced_ids) - pre_ids
            assert post_ids

            snapshot = client.trace(limit=0, slow=False)
            assert snapshot["store_generation"] == generation
            matched = [
                trace
                for trace in snapshot["traces"]
                if trace["trace_id"] in post_ids
            ]
            assert matched, "no post-reload traced request reached this worker's ring"
            for trace in matched:
                assert trace["store_generation"] == generation
                stages = [span["stage"] for span in trace["spans"]]
                assert stages == ["decode", "queue", "batch", "encode", "write"]
                assert all(span["ms"] >= 0.0 for span in trace["spans"])
                assert trace["total_ms"] > 0.0
            # nothing from the old generation leaks into the new ring
            assert not any(
                trace["store_generation"] == old_generation
                for trace in snapshot["traces"]
            )
    finally:
        supervisor.shutdown()


def test_reload_aborts_cleanly_when_replacement_cannot_start(store_file, tmp_path):
    supervisor = FleetSupervisor(store_file, workers=1, port=0)
    host, port = supervisor.start()
    pids_before = list(supervisor.pids)
    bad = tmp_path / "truncated.bin"
    bad.write_bytes(open(store_file, "rb").read()[:40])  # valid magic, bad body
    try:
        with pytest.raises(RuntimeError, match="reload aborted"):
            supervisor.reload(str(bad))
        # old fleet intact and still answering
        assert supervisor.poll()
        assert supervisor.pids == pids_before
        with LabelClient(host, port) as client:
            assert client.info()["worker"] in pids_before
    finally:
        supervisor.shutdown()
