"""Tests for the ``repro.api`` façade: DistanceIndex, QueryResult, IndexCatalog."""

from __future__ import annotations

import pytest

from repro.api import (
    CatalogError,
    DistanceIndex,
    IndexCatalog,
    QueryResult,
    SpecError,
)
from repro.core.freedman import FreedmanScheme
from repro.core.registry import SCHEMES
from repro.generators.workloads import make_tree, random_pairs
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.store import LabelStore

#: every registered scheme as a spec string, covering all three families
ALL_SPECS = [
    *sorted(SCHEMES),
    "k-distance:k=4",
    "approximate:epsilon=0.5",
]


def check_result(result: QueryResult, exact: int) -> None:
    """One QueryResult is consistent with the oracle distance."""
    if result.is_exact:
        assert result.value == exact
        assert result.within_bound and result.ratio_bound == 1.0
    elif not result.within_bound:
        assert result.value is None and result.ratio_bound is None
        assert not result  # falsy
    else:
        assert result.ratio_bound > 1.0
        if exact == 0:
            assert result.value == 0
        else:
            assert exact - 1e-9 <= result.value <= result.ratio_bound * exact + 1e-9


class TestDistanceIndexRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_build_save_open_query(self, tmp_path, spec):
        """Acceptance: build -> save -> open -> query for every scheme."""
        tree = make_tree("random", 70, seed=13)
        oracle = TreeDistanceOracle(tree)
        index = DistanceIndex.build(tree, spec)

        path = tmp_path / "index.bin"
        written = index.save(path)
        assert written == path.stat().st_size

        reopened = DistanceIndex.open(path)
        assert reopened.n == tree.n
        assert reopened.spec == index.spec
        assert reopened.kind == index.kind
        for u, v in random_pairs(tree, 50, seed=3):
            result = reopened.query(u, v)
            check_result(result, oracle.distance(u, v))
            assert result.value == index.query(u, v).value

    def test_old_label_store_files_still_open(self, tmp_path):
        """Back-compat: a file written through the pre-façade layer opens."""
        tree = make_tree("random", 40, seed=5)
        store = LabelStore.encode_tree(FreedmanScheme(), tree)
        path = tmp_path / "legacy.bin"
        store.save(path)

        index = DistanceIndex.open(path)
        oracle = TreeDistanceOracle(tree)
        assert index.spec == "freedman"
        assert index.query(3, 17).value == oracle.distance(3, 17)

    def test_bytes_round_trip(self):
        tree = make_tree("random", 30, seed=1)
        index = DistanceIndex.build(tree, "k-distance:k=3")
        clone = DistanceIndex.from_bytes(index.to_bytes())
        pairs = random_pairs(tree, 40, seed=2)
        assert clone.batch(pairs, raw=True) == index.batch(pairs, raw=True)

    def test_build_accepts_scheme_instance(self):
        tree = make_tree("path", 12)
        index = DistanceIndex.build(tree, FreedmanScheme(use_fragments=False))
        assert index.spec == "freedman:use_fragments=false"
        assert index.query(0, 11).value == 11

    def test_build_rejects_bad_spec(self):
        with pytest.raises(SpecError):
            DistanceIndex.build(make_tree("path", 5), "kdistance:k=0")


class TestDistanceIndexQueries:
    def test_batch_matches_single(self):
        tree = make_tree("random", 90, seed=7)
        index = DistanceIndex.build(tree, "freedman")
        pairs = random_pairs(tree, 120, seed=4)
        batch = index.batch(pairs)
        assert [r.value for r in batch] == [
            index.query(u, v).value for u, v in pairs
        ]
        assert all(isinstance(r, QueryResult) for r in batch)

    def test_raw_escape_hatch(self):
        tree = make_tree("random", 50, seed=8)
        oracle = TreeDistanceOracle(tree)
        index = DistanceIndex.build(tree, "freedman")
        assert index.query(3, 10, raw=True) == oracle.distance(3, 10)
        pairs = random_pairs(tree, 30, seed=1)
        assert index.batch(pairs, raw=True) == oracle.batch_distance(pairs)
        bounded = DistanceIndex.build(tree, "k-distance:k=2")
        raw = bounded.batch(pairs, raw=True)
        assert all(answer is None or answer <= 2 for answer in raw)

    def test_matrix(self):
        tree = make_tree("random", 25, seed=9)
        oracle = TreeDistanceOracle(tree)
        index = DistanceIndex.build(tree, "freedman")
        assert index.matrix(raw=True) == oracle.distance_matrix()
        wrapped = index.matrix([0, 5, 9])
        expected = oracle.distance_matrix([0, 5, 9])
        for row, expected_row in zip(wrapped, expected):
            assert [r.value for r in row] == expected_row
            assert all(r.is_exact for r in row)

    def test_stats(self):
        tree = make_tree("random", 40, seed=2)
        index = DistanceIndex.build(tree, "approximate:epsilon=0.25")
        stats = index.stats()
        assert stats["spec"] == "approximate:epsilon=0.25"
        assert stats["kind"] == "approximate"
        assert stats["n"] == len(index) == 40
        assert stats["file_bytes"] > stats["payload_bytes"] > 0
        assert stats["total_label_bits"] >= stats["max_label_bits"] > 0
        assert stats["cache"]["max_size"] == 4096

    def test_result_semantics_bounded(self):
        tree = make_tree("path", 30)
        index = DistanceIndex.build(tree, "k-distance:k=5")
        near = index.query(0, 3)
        assert near.value == 3 and near.is_exact and near.within_bound and near
        far = index.query(0, 29)
        assert far.value is None and not far.within_bound and not far
        assert "beyond" in repr(far)

    def test_result_is_frozen(self):
        result = QueryResult(3, True, True, 1.0)
        with pytest.raises(AttributeError):
            result.value = 4


def build_heterogeneous_catalog() -> tuple[IndexCatalog, dict, dict]:
    """A catalog of exact + bounded + approximate indexes over distinct trees."""
    trees = {
        "exact": make_tree("random", 60, seed=21),
        "bounded": make_tree("caterpillar", 50, seed=0),
        "approx": make_tree("balanced_binary", 63, seed=0),
    }
    specs = {
        "exact": "freedman",
        "bounded": "k-distance:k=6",
        "approx": "approximate:epsilon=0.5",
    }
    catalog = IndexCatalog()
    for name, tree in trees.items():
        catalog.add(name, DistanceIndex.build(tree, specs[name]))
    return catalog, trees, specs


class TestIndexCatalog:
    def test_membership_api(self):
        catalog, trees, _ = build_heterogeneous_catalog()
        assert catalog.names() == ["exact", "bounded", "approx"]
        assert len(catalog) == 3 and "bounded" in catalog
        assert list(catalog) == catalog.names()
        catalog.remove("bounded")
        assert "bounded" not in catalog and len(catalog) == 2

    def test_add_validation(self):
        catalog, _, _ = build_heterogeneous_catalog()
        index = catalog.index("exact")
        with pytest.raises(CatalogError):
            catalog.add("exact", index)  # duplicate
        with pytest.raises(CatalogError):
            catalog.add("", index)
        with pytest.raises(CatalogError):
            catalog.add("x", object())
        with pytest.raises(CatalogError):
            catalog.remove("nope")
        with pytest.raises(CatalogError):
            catalog.query("nope", 0, 1)

    def test_routed_queries_match_oracle(self, tmp_path):
        """Acceptance: >=3 heterogeneous members answer vs the exact oracle."""
        catalog, trees, _ = build_heterogeneous_catalog()
        path = tmp_path / "forest.cat"
        catalog.save(path)
        loaded = IndexCatalog.load(path)

        for name, tree in trees.items():
            oracle = TreeDistanceOracle(tree)
            for u, v in random_pairs(tree, 40, seed=6):
                check_result(loaded.query(name, u, v), oracle.distance(u, v))
        # batch routing agrees with single routing
        pairs = random_pairs(trees["exact"], 30, seed=7)
        assert loaded.batch("exact", pairs, raw=True) == [
            loaded.query("exact", u, v, raw=True) for u, v in pairs
        ]

    def test_lazy_open_on_load(self, tmp_path):
        catalog, _, _ = build_heterogeneous_catalog()
        path = tmp_path / "forest.cat"
        catalog.save(path)

        loaded = IndexCatalog.load(path)
        assert [loaded.is_open(name) for name in loaded.names()] == [False] * 3
        loaded.query("bounded", 0, 1)
        assert loaded.is_open("bounded")
        assert not loaded.is_open("exact") and not loaded.is_open("approx")
        assert loaded.index("bounded") is loaded.index("bounded")  # cached

    def test_bytes_round_trip_preserves_order_and_specs(self):
        catalog, _, specs = build_heterogeneous_catalog()
        clone = IndexCatalog.from_bytes(catalog.to_bytes())
        assert clone.names() == catalog.names()
        for name, spec in specs.items():
            assert clone.index(name).spec == spec
        # a resaved lazy catalog serialises identically
        assert IndexCatalog.from_bytes(clone.to_bytes()).names() == clone.names()
        assert clone.to_bytes() == catalog.to_bytes()

    def test_resave_to_same_path_keeps_lazy_members_valid(self, tmp_path):
        """Regression: saving a loaded catalog over its own file must not
        leave lazy members reading stale offsets from the rewritten file."""
        catalog, trees, _ = build_heterogeneous_catalog()
        path = tmp_path / "forest.cat"
        catalog.save(path)

        loaded = IndexCatalog.load(path)
        extra_tree = make_tree("path", 20)
        loaded.add("extra", DistanceIndex.build(extra_tree, "naive-list"))
        loaded.save(path)  # rewrites the file the lazy members point into

        oracle = TreeDistanceOracle(trees["exact"])
        assert loaded.query("exact", 1, 7).value == oracle.distance(1, 7)
        assert loaded.query("extra", 0, 19).value == 19
        # and a fresh load of the rewritten file sees all four members
        assert IndexCatalog.load(path).names() == [
            "exact", "bounded", "approx", "extra",
        ]

    def test_describe_does_not_open_members(self, tmp_path):
        catalog, trees, specs = build_heterogeneous_catalog()
        path = tmp_path / "forest.cat"
        catalog.save(path)

        loaded = IndexCatalog.load(path)
        rows = loaded.describe()
        assert [loaded.is_open(name) for name in loaded.names()] == [False] * 3
        assert [row["name"] for row in rows] == catalog.names()
        for row in rows:
            assert row["spec"] == specs[row["name"]]
            assert row["n"] == trees[row["name"]].n
            assert row["open"] is False and row["file_bytes"] > 0
        assert {row["kind"] for row in rows} == {"exact", "bounded", "approximate"}
        # open one member: describe reports it from live stats now
        loaded.query("exact", 0, 1)
        assert [row["open"] for row in loaded.describe()] == [True, False, False]

    def test_stats_keyed_by_name(self):
        catalog, trees, specs = build_heterogeneous_catalog()
        stats = catalog.stats()
        assert set(stats) == set(trees)
        for name in trees:
            assert stats[name]["spec"] == specs[name]
            assert stats[name]["n"] == trees[name].n

    def test_empty_catalog_round_trip(self, tmp_path):
        catalog = IndexCatalog()
        path = tmp_path / "empty.cat"
        catalog.save(path)
        assert IndexCatalog.load(path).names() == []

    def test_bad_magic(self):
        with pytest.raises(CatalogError):
            IndexCatalog.from_bytes(b"XXXX\x00\x00")

    def test_truncated_blob(self):
        catalog, _, _ = build_heterogeneous_catalog()
        blob = catalog.to_bytes()
        with pytest.raises(CatalogError):
            IndexCatalog.from_bytes(blob[:-10])

    def test_truncated_file(self, tmp_path):
        catalog, _, _ = build_heterogeneous_catalog()
        path = tmp_path / "forest.cat"
        catalog.save(path)
        data = path.read_bytes()
        path.write_bytes(data[:-10])
        with pytest.raises(CatalogError):
            IndexCatalog.load(path)

    def test_many_members_toc_parses(self, tmp_path):
        """A catalog with many members exercises TOC-only loading."""
        tree = make_tree("path", 6)
        catalog = IndexCatalog()
        for i in range(40):
            catalog.add(f"member-{i:03d}", DistanceIndex.build(tree, "naive-list"))
        path = tmp_path / "many.cat"
        catalog.save(path)
        loaded = IndexCatalog.load(path)
        assert len(loaded) == 40
        assert loaded.query("member-037", 0, 5).value == 5
