"""Tests for :mod:`repro.serve`: protocol, server, clients, concurrency.

The server tests run a real :class:`LabelServer` on an ephemeral port —
inside ``asyncio.run`` for the async client, and on a background thread's
event loop for the blocking client — and check that every scheme family
round-trips over the wire with its typed-result semantics intact.
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.api import DistanceIndex, IndexCatalog, QueryResult
from repro.generators.workloads import make_tree, random_pairs, zipf_pairs
from repro.serve import (
    AsyncLabelClient,
    LabelClient,
    LabelServer,
    ProtocolError,
    ServerError,
)
from repro.serve import protocol


# -- shared fixtures ----------------------------------------------------------


@pytest.fixture(scope="module")
def tree():
    return make_tree("random", 150, seed=7)


@pytest.fixture(scope="module")
def catalog_bytes(tree):
    catalog = IndexCatalog()
    catalog.add("exact", DistanceIndex.build(tree, "freedman"))
    catalog.add("bounded", DistanceIndex.build(tree, "k-distance:k=4"))
    catalog.add("approx", DistanceIndex.build(tree, "approximate:epsilon=0.25"))
    return catalog.to_bytes()


@pytest.fixture()
def catalog(catalog_bytes):
    # a fresh lazily-opened catalog per test (members closed until queried)
    return IndexCatalog.from_bytes(catalog_bytes)


# -- protocol unit tests ------------------------------------------------------


def test_request_frames_round_trip():
    cases = [
        (
            protocol.encode_query(7, 3, 42, "m"),
            (protocol.OP_QUERY, 7, "m", (3, 42), None, None),
        ),
        (
            protocol.encode_query(8, 3, 42, "m", trace_id=12345),
            (protocol.OP_QUERY, 8, "m", (3, 42), 12345, None),
        ),
        (
            protocol.encode_query(18, 3, 42, "m", route_version=4),
            (protocol.OP_QUERY, 18, "m", (3, 42), None, 4),
        ),
        (
            protocol.encode_query(19, 3, 42, "m", trace_id=9, route_version=4),
            (protocol.OP_QUERY, 19, "m", (3, 42), 9, 4),
        ),
        (
            protocol.encode_batch(9, [(1, 2), (3, 4)], ""),
            (protocol.OP_BATCH, 9, "", [(1, 2), (3, 4)], None, None),
        ),
        (
            protocol.encode_batch(10, [(1, 2)], "", trace_id=7),
            (protocol.OP_BATCH, 10, "", [(1, 2)], 7, None),
        ),
        (
            protocol.encode_batch(20, [(1, 2)], "", route_version=2),
            (protocol.OP_BATCH, 20, "", [(1, 2)], None, 2),
        ),
        (
            protocol.encode_matrix(11, [5, 6], "x"),
            (protocol.OP_MATRIX, 11, "x", [5, 6], None, None),
        ),
        (
            protocol.encode_matrix(12, None, "x"),
            (protocol.OP_MATRIX, 12, "x", None, None, None),
        ),
        (
            protocol.encode_matrix(13, [], "x"),
            (protocol.OP_MATRIX, 13, "x", [], None, None),
        ),
        (
            protocol.encode_stats(14, "y"),
            (protocol.OP_STATS, 14, "y", None, None, None),
        ),
        (
            protocol.encode_stats(16, "y", reservoir=True),
            (protocol.OP_STATS, 16, "y", True, None, None),
        ),
        (protocol.encode_info(15), (protocol.OP_INFO, 15, "", None, None, None)),
        (
            protocol.encode_trace_request(17, limit=16, slow=False),
            (protocol.OP_TRACE, 17, "", (16, False), None, None),
        ),
    ]
    decoder = protocol.FrameDecoder()
    for frame, _ in cases:
        decoder.feed(frame)
    bodies = decoder.frames()
    assert len(bodies) == len(cases)
    for body, (_, expected) in zip(bodies, cases):
        assert protocol.decode_request(body) == expected


@pytest.mark.parametrize(
    ("kind", "ratio", "values"),
    [
        (protocol.KIND_EXACT, None, [0, 1, 2, 10**9]),
        (protocol.KIND_BOUNDED, None, [None, 0, 4, None]),
        (protocol.KIND_APPROXIMATE, 1.25, [0.0, 17.09, 3.5]),
    ],
)
def test_result_values_round_trip(kind, ratio, values):
    frame = protocol.encode_result(21, kind, values, ratio)
    decoder = protocol.FrameDecoder()
    decoder.feed(frame)
    (body,) = decoder.frames()
    op, request_id, (seen_kind, seen_ratio, seen_values) = protocol.decode_response(body)
    assert (op, request_id, seen_kind) == (protocol.OP_RESULT, 21, kind)
    assert seen_ratio == ratio
    assert seen_values == values


def test_error_and_json_responses_round_trip():
    decoder = protocol.FrameDecoder()
    decoder.feed(protocol.encode_error(5, "boom"))
    decoder.feed(
        protocol.encode_json_response(protocol.OP_STATS_RESULT, 6, {"qps": 1.5})
    )
    bodies = decoder.frames()
    assert protocol.decode_response(bodies[0]) == (protocol.OP_ERROR, 5, "boom")
    assert protocol.decode_response(bodies[1]) == (
        protocol.OP_STATS_RESULT,
        6,
        {"qps": 1.5},
    )


def test_frame_decoder_handles_arbitrary_chunking():
    frames = b"".join(
        protocol.encode_query(request_id, request_id, request_id + 1, "abc")
        for request_id in range(40)
    )
    for chunk_size in (1, 2, 3, 7, 64):
        decoder = protocol.FrameDecoder()
        seen = []
        for pos in range(0, len(frames), chunk_size):
            decoder.feed(frames[pos : pos + chunk_size])
            seen.extend(decoder.frames())
        assert len(seen) == 40
        assert protocol.decode_request(seen[17])[1] == 17


def test_protocol_rejects_malformed_input():
    with pytest.raises(ProtocolError):
        protocol.decode_request(b"")
    with pytest.raises(ProtocolError):
        protocol.decode_request(bytes([0x7E, 1]))  # unknown opcode
    with pytest.raises(ProtocolError):
        protocol.decode_response(bytes([protocol.OP_RESULT]))  # truncated
    decoder = protocol.FrameDecoder()
    decoder.feed(b"\xff" * 10)  # unterminated varint length prefix
    with pytest.raises(ProtocolError):
        decoder.frames()


# -- async server round-trips -------------------------------------------------


def _run(coroutine):
    return asyncio.run(coroutine)


async def _with_server(target, handler, **server_kwargs):
    server = LabelServer(target, **server_kwargs)
    host, port = await server.start()
    try:
        client = await AsyncLabelClient.connect(host, port)
        try:
            return await handler(server, client, host, port)
        finally:
            await client.close()
    finally:
        await server.stop()


def test_all_scheme_kinds_round_trip_typed(catalog, tree):
    pairs = random_pairs(tree, 60, seed=3)
    local = {name: catalog.index(name) for name in catalog.names()}

    async def handler(server, client, host, port):
        for name, index in local.items():
            expected = index.batch(pairs)
            over_wire = await client.batch(pairs, name=name)
            assert over_wire == expected, name
            for result in over_wire:
                assert isinstance(result, QueryResult)
            u, v = pairs[0]
            assert await client.query(u, v, name=name) == index.query(u, v)
            raw = await client.batch(pairs[:5], name=name, raw=True)
            assert raw == index.batch(pairs[:5], raw=True)

    _run(_with_server(catalog, handler))


def test_matrix_and_info_and_stats(catalog, tree):
    async def handler(server, client, host, port):
        info = await client.info()
        assert sorted(info["members"]) == ["approx", "bounded", "exact"]
        assert info["members"]["exact"]["n"] == tree.n
        assert info["members"]["exact"]["kind"] == "exact"

        nodes = [0, 5, 9, 17]
        expected = catalog.index("exact").matrix(nodes, raw=True)
        assert await client.matrix(nodes, name="exact", raw=True) == expected

        stats = await client.stats("exact")
        assert stats["matrix_requests"] == 1
        assert stats["index"]["spec"] == "freedman"
        assert 0.0 <= stats["index"]["cache_hit_rate"] <= 1.0

    _run(_with_server(catalog, handler))


def test_single_index_server_uses_empty_name(tree):
    index = DistanceIndex.build(tree, "freedman")

    async def handler(server, client, host, port):
        info = await client.info()
        assert list(info["members"]) == [""]
        assert await client.query(3, 42) == index.query(3, 42)
        with pytest.raises(ServerError):
            await client.query(3, 42, name="other")

    _run(_with_server(index, handler))


def test_server_error_responses_keep_connection_usable(catalog, tree):
    async def handler(server, client, host, port):
        with pytest.raises(ServerError):
            await client.query(0, tree.n + 5, name="exact")  # node out of range
        with pytest.raises(ServerError):
            await client.query(0, 1, name="missing")  # unknown member
        # the connection survived both failures
        assert await client.query(0, 1, name="exact") == catalog.query("exact", 0, 1)
        assert (await client.stats())["errors"] == 2

    _run(_with_server(catalog, handler))


def test_pipeline_preserves_order_and_coalesces(catalog, tree):
    pairs = zipf_pairs(tree, 300, skew=1.1, seed=5)
    expected = catalog.index("exact").batch(pairs, raw=True)

    async def handler(server, client, host, port):
        answers = await client.pipeline(pairs, name="exact", raw=True, window=64)
        assert answers == expected
        stats = await client.stats()
        assert stats["queries"] == len(pairs)
        # micro-batching must have grouped many queries per flush
        assert stats["flushes"] < len(pairs)
        assert stats["mean_batch_size"] > 1.0

    _run(_with_server(catalog, handler))


def test_naive_mode_answers_one_request_per_batch(catalog, tree):
    pairs = random_pairs(tree, 50, seed=9)
    expected = catalog.index("exact").batch(pairs, raw=True)

    async def handler(server, client, host, port):
        answers = await client.pipeline(pairs, name="exact", raw=True, window=16)
        assert answers == expected
        stats = await client.stats()
        assert stats["flushes"] == len(pairs)  # every query flushed alone
        assert stats["mean_batch_size"] == 1.0
        assert stats["coalescing"] is False

    _run(_with_server(catalog, handler, coalesce=False))


def test_bad_query_does_not_poison_coalesced_batch(catalog, tree):
    """A valid and an out-of-range query coalesced into the same flush:
    only the offender gets OP_ERROR, the valid query is still answered."""

    async def handler(server, client, host, port):
        good = client._send(
            lambda rid: protocol.encode_query(rid, 0, 1, "exact")
        )
        bad = client._send(
            lambda rid: protocol.encode_query(rid, 0, tree.n + 7, "exact")
        )
        _, payload = await good
        kind, ratio, values = payload
        assert values == [catalog.query("exact", 0, 1, raw=True)]
        with pytest.raises(ServerError):
            await bad
        stats = await client.stats()
        assert stats["errors"] == 1
        assert stats["queries"] == 1

    _run(_with_server(catalog, handler))


def test_async_client_reconnects_after_connection_loss(catalog, tree):
    async def handler(server, client, host, port):
        expected = catalog.query("exact", 0, 2)
        assert await client.query(0, 1, name="exact")  # connection works
        client._writer.close()  # simulate the peer going away
        await asyncio.sleep(0.05)  # let the reader task observe EOF
        # connect()-built clients know their address: the drop is retryable
        assert await client.query(0, 2, name="exact") == expected
        assert client.reconnects == 1
        assert await client.pipeline([(0, 1)], name="exact")
        assert client.reconnects == 1  # healed connection reused, no churn

    _run(_with_server(catalog, handler))


def test_async_client_without_address_fails_fast(catalog, tree):
    async def handler(server, client, host, port):
        reader, writer = await asyncio.open_connection(host, port)
        raw = AsyncLabelClient(reader, writer)  # no address -> no reconnect
        try:
            assert await raw.query(0, 1, name="exact")
            writer.close()
            await asyncio.sleep(0.05)
            with pytest.raises(ConnectionError):
                await raw.query(0, 2, name="exact")
            with pytest.raises(ConnectionError):
                await raw.pipeline([(0, 1)], name="exact")
        finally:
            await raw.close()

    _run(_with_server(catalog, handler))


def test_matrix_size_cap(catalog, tree):
    async def handler(server, client, host, port):
        small = await client.matrix([0, 1, 2], name="exact", raw=True)
        assert small == catalog.index("exact").matrix([0, 1, 2], raw=True)
        with pytest.raises(ServerError):  # explicit node list over the cap
            await client.matrix(list(range(5)), name="exact")
        with pytest.raises(ServerError):  # all-nodes matrix over the cap
            await client.matrix(name="exact")

    _run(_with_server(catalog, handler, max_matrix=4))


def test_stats_does_not_open_closed_members(catalog, tree):
    fresh = IndexCatalog.from_bytes(catalog.to_bytes())

    async def handler(server, client, host, port):
        stats = await client.stats("exact")
        assert stats["index"] == {"name": "exact", "open": False}
        assert not fresh.is_open("exact")  # the probe kept the member closed
        with pytest.raises(ServerError):
            await client.stats("missing")
        await client.query(0, 1, name="exact")
        stats = await client.stats("exact")
        assert stats["index"]["open"] is True
        assert stats["index"]["spec"] == "freedman"

    _run(_with_server(fresh, handler))


def test_max_batch_bounds_coalescer(catalog, tree):
    pairs = random_pairs(tree, 64, seed=13)

    async def handler(server, client, host, port):
        answers = await client.pipeline(pairs, name="exact", raw=True, window=64)
        assert answers == catalog.index("exact").batch(pairs, raw=True)
        stats = await client.stats()
        assert stats["flushes"] >= len(pairs) // 8

    _run(_with_server(catalog, handler, max_batch=8))


# -- concurrency: many tasks, lazy members, one shared engine -----------------


def test_concurrent_tasks_share_lazy_members_and_cache(catalog, tree):
    """The satellite concurrency check: several asyncio tasks hammer the
    server at once; catalog members open lazily under that concurrency and
    every member's parsed-label LRU serves all tasks."""
    task_count = 6
    per_task = 120
    names = ["exact", "bounded", "approx"]
    workloads = {
        index: zipf_pairs(tree, per_task, skew=1.0, seed=100 + index)
        for index in range(task_count)
    }
    expected = {
        index: catalog.index(names[index % 3]).batch(workloads[index], raw=True)
        for index in range(task_count)
    }
    # a fresh catalog so the server opens members lazily itself
    fresh = IndexCatalog.from_bytes(catalog.to_bytes())
    assert not any(fresh.is_open(name) for name in fresh.names())

    async def handler(server, client, host, port):
        clients = [client] + [
            await AsyncLabelClient.connect(host, port) for _ in range(2)
        ]
        try:
            async def one(index: int):
                target = clients[index % len(clients)]
                return await target.pipeline(
                    workloads[index], name=names[index % 3], raw=True, window=32
                )

            answers = await asyncio.gather(*(one(index) for index in range(task_count)))
            for index, got in enumerate(answers):
                assert got == expected[index], f"task {index} answers diverged"
            # every member was opened on demand by server-side traffic
            assert all(fresh.is_open(name) for name in names)
            for name in names:
                cache = fresh.index(name).engine.cache_info()
                assert cache["hits"] > 0, name
                assert 0.0 < cache["hit_rate"] <= 1.0
            stats = await client.stats()
            assert stats["queries"] == task_count * per_task
            assert stats["mean_batch_size"] > 1.0  # cross-task coalescing
            assert stats["connections_open"] == 3
        finally:
            for extra in clients[1:]:
                await extra.close()

    _run(_with_server(fresh, handler))


# -- blocking client against a thread-hosted server ---------------------------


@pytest.fixture()
def threaded_server(catalog):
    """A live server on a daemon thread; yields ``(host, port)``."""
    bound: list[tuple[str, int]] = []
    ready = threading.Event()
    holder: dict = {}

    def run() -> None:
        async def main() -> None:
            server = LabelServer(catalog)
            bound.append(await server.start())
            holder["loop"] = asyncio.get_running_loop()
            holder["stop"] = asyncio.Event()
            ready.set()
            serving = asyncio.ensure_future(server.serve_forever())
            await holder["stop"].wait()
            serving.cancel()
            await server.stop()

        asyncio.run(main())

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    assert ready.wait(10), "server thread failed to start"
    yield bound[0]
    holder["loop"].call_soon_threadsafe(holder["stop"].set)
    thread.join(10)


def test_sync_client_round_trip(threaded_server, catalog, tree):
    host, port = threaded_server
    pairs = random_pairs(tree, 80, seed=17)
    with LabelClient(host, port) as client:
        assert sorted(client.info()["members"]) == ["approx", "bounded", "exact"]
        assert client.batch(pairs, name="exact") == catalog.index("exact").batch(pairs)
        assert client.query(1, 2, name="bounded") == catalog.query("bounded", 1, 2)
        piped = client.pipeline(pairs, name="exact", raw=True, window=24)
        assert piped == catalog.index("exact").batch(pairs, raw=True)
        nodes = [2, 3, 5]
        assert client.matrix(nodes, name="approx", raw=True) == catalog.index(
            "approx"
        ).matrix(nodes, raw=True)
        stats = client.stats("exact")
        assert stats["queries"] >= len(pairs)
        with pytest.raises(ServerError):
            client.query(0, 1, name="missing")
