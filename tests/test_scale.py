"""Beyond-RAM scale: mmap-backed stores and the external-memory builder.

Two differential contracts are pinned here:

* an mmap-opened store is **indistinguishable** from a bytes-loaded one —
  same ``raw()``/``buffers()`` content, same ``to_bytes()``, same
  ``batch_query``/``matrix_into`` answers under every kernel tier, for
  every registered scheme spec, and for catalog members opened as
  zero-copy sub-views of one mapped container;
* the streaming builder (:mod:`repro.scale.build`) writes **byte-identical**
  files to ``LabelStore.encode_tree(...).save(...)`` while spilling packed
  runs to disk, including against the legacy fixtures in ``tests/data``.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager

import pytest

from repro import kernels
from repro.core.registry import make_scheme_from_spec
from repro.generators.workloads import (
    WORKLOADS,
    khop_local_pairs,
    make_tree,
    pair_workload,
    sibling_pairs,
    uniform_pairs,
)
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.scale import (
    build_store_in_memory,
    build_store_streaming,
    current_rss_bytes,
    peak_rss_bytes,
)
from repro.store import LabelStore, QueryEngine, StoreError
from repro.store.query_engine import QueryEngine as _QE  # noqa: F401 - re-export check

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

#: every registered scheme, parameterised where construction needs it
ALL_SPECS = [
    "hld-fixed",
    "freedman",
    "freedman-no-accumulators",
    "freedman-no-binarize",
    "freedman-no-fragments",
    "alstrup",
    "separator",
    "naive-list",
    "k-distance:k=3",
    "approximate:epsilon=0.5",
]

TIERS = ["native", "numpy", "python"]


@pytest.fixture(autouse=True)
def _fresh_probe():
    kernels.reset()
    yield
    kernels.reset()


@contextmanager
def forced_tier(tier: str):
    """Force ``REPRO_KERNELS=tier`` for the duration."""
    old = os.environ.get(kernels.ENV_VAR)
    os.environ[kernels.ENV_VAR] = tier
    kernels.reset()
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(kernels.ENV_VAR, None)
        else:
            os.environ[kernels.ENV_VAR] = old
        kernels.reset()


def _saved_store(tmp_path, spec, n=80, seed=13):
    tree = make_tree("random", n, seed)
    scheme = make_scheme_from_spec(spec)
    store = LabelStore.encode_tree(scheme, tree)
    path = tmp_path / "store.bin"
    store.save(path)
    return tree, store, path


class TestMmapDifferential:
    """mmap-opened == bytes-loaded, bit for bit, under every tier."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_store_views_identical(self, tmp_path, spec):
        _, built, path = _saved_store(tmp_path, spec)
        loaded = LabelStore.load(path)
        mapped = LabelStore.open_mmap(path)
        assert mapped.mmap_backed and not loaded.mmap_backed
        assert mapped.n == loaded.n == built.n
        assert mapped.to_bytes() == loaded.to_bytes() == built.to_bytes()
        for node in range(mapped.n):
            assert bytes(mapped.raw(node)) == bytes(loaded.raw(node))
            assert mapped.bit_length(node) == loaded.bit_length(node)
        m_view, m_offs, m_lens = mapped.buffers()
        l_view, l_offs, l_lens = loaded.buffers()
        assert bytes(m_view) == bytes(l_view)
        assert list(m_offs) == list(l_offs)
        assert list(m_lens) == list(l_lens)

    @pytest.mark.parametrize("tier", TIERS)
    @pytest.mark.parametrize("spec", ["freedman", "hld-fixed", "k-distance:k=3"])
    def test_queries_identical_per_tier(self, tmp_path, spec, tier):
        tree, _, path = _saved_store(tmp_path, spec)
        pairs = uniform_pairs(tree, 200, seed=5)
        nodes = list(range(0, tree.n, 7))
        with forced_tier(tier):
            from_ram = QueryEngine(LabelStore.load(path))
            from_map = QueryEngine(LabelStore.open_mmap(path))
            assert from_map.batch_query(pairs) == from_ram.batch_query(pairs)
            assert from_map.matrix_into(nodes) == from_ram.matrix_into(nodes)

    @pytest.mark.parametrize("name", ["freedman", "hld", "kdistance"])
    def test_legacy_fixture_mmap_round_trip(self, name):
        """The pinned legacy files answer identically through a mapping."""
        with open(os.path.join(DATA_DIR, "legacy_store_expected.json")) as handle:
            record = json.load(handle)[name]
        path = os.path.join(DATA_DIR, f"legacy_store_{name}.bin")
        store = LabelStore.open_mmap(path)
        assert store.mmap_backed
        assert store.n == record["n"]
        assert hashlib.sha256(store.to_bytes()).hexdigest() == record["sha256"]
        pairs = [tuple(pair) for pair in record["pairs"]]
        assert QueryEngine(store).batch_query(pairs) == record["answers"]

    def test_open_mmap_rejects_garbage(self, tmp_path):
        empty = tmp_path / "empty.bin"
        empty.write_bytes(b"")
        with pytest.raises(StoreError):
            LabelStore.open_mmap(empty)
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"not a store at all")
        with pytest.raises(StoreError):
            LabelStore.open_mmap(bogus)


class TestCatalogMmap:
    """Catalog members open as zero-copy sub-views of one mapping."""

    def _saved_catalog(self, tmp_path):
        from repro.api import DistanceIndex, IndexCatalog

        catalog = IndexCatalog()
        trees = {}
        for name, spec, seed in (
            ("core", "freedman", 3),
            ("fixed", "hld-fixed", 4),
            ("acl", "k-distance:k=3", 5),
        ):
            tree = make_tree("random", 60, seed)
            trees[name] = tree
            catalog.add(name, DistanceIndex.build(tree, spec))
        path = tmp_path / "forest.cat"
        catalog.save(path)
        return trees, path

    def test_members_share_the_mapping(self, tmp_path):
        from repro.api import IndexCatalog

        trees, path = self._saved_catalog(tmp_path)
        plain = IndexCatalog.load(path)
        mapped = IndexCatalog.load(path, mmap=True)
        for name, tree in trees.items():
            ram_index = plain.index(name)
            map_index = mapped.index(name)
            assert map_index.store.mmap_backed
            assert not ram_index.store.mmap_backed
            assert map_index.store.to_bytes() == ram_index.store.to_bytes()
            pairs = uniform_pairs(tree, 120, seed=11)
            assert [r.value for r in map_index.batch(pairs)] == [
                r.value for r in ram_index.batch(pairs)
            ]

    def test_catalog_round_trips_through_mmap(self, tmp_path):
        from repro.api import IndexCatalog

        _, path = self._saved_catalog(tmp_path)
        mapped = IndexCatalog.open_mmap(path)
        assert mapped.to_bytes() == path.read_bytes()

    def test_open_mmap_rejects_garbage(self, tmp_path):
        from repro.api import CatalogError, IndexCatalog

        empty = tmp_path / "empty.cat"
        empty.write_bytes(b"")
        with pytest.raises(CatalogError):
            IndexCatalog.open_mmap(empty)


class TestDistanceIndexMmap:
    def test_open_mmap_flag_and_stats(self, tmp_path):
        from repro.api import DistanceIndex

        tree = make_tree("random", 90, seed=2)
        index = DistanceIndex.build(tree, "freedman")
        path = tmp_path / "index.bin"
        index.save(path)
        mapped = DistanceIndex.open(path, mmap=True)
        plain = DistanceIndex.open(path)
        assert mapped.stats()["mmap"] is True
        assert plain.stats()["mmap"] is False
        pairs = uniform_pairs(tree, 100, seed=9)
        assert [r.value for r in mapped.batch(pairs)] == [
            r.value for r in plain.batch(pairs)
        ]


class TestStreamingBuild:
    """The external-memory pipeline writes the exact in-memory bytes."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_byte_identical_to_in_memory(self, tmp_path, spec):
        tree = make_tree("random", 300, seed=21)
        scheme = make_scheme_from_spec(spec)
        path = tmp_path / "streamed.bin"
        # a tiny run buffer forces several spills even at n=300
        stats = build_store_streaming(scheme, tree, path, run_bytes=1 << 16)
        reference = LabelStore.encode_tree(make_scheme_from_spec(spec), tree)
        assert path.read_bytes() == reference.to_bytes()
        assert stats["n"] == tree.n
        assert stats["file_bytes"] == path.stat().st_size

    def test_spills_runs_and_reports(self, tmp_path):
        tree = make_tree("random", 5000, seed=1)
        scheme = make_scheme_from_spec("freedman")
        path = tmp_path / "streamed.bin"
        seen = []
        stats = build_store_streaming(
            scheme,
            tree,
            path,
            run_bytes=1 << 16,
            progress=lambda done, total: seen.append((done, total)),
            progress_every=500,
        )
        assert stats["runs_spilled"] >= 1
        assert seen[0] == (500, 5000) and seen[-1] == (5000, 5000)
        # no spill temp files survive the build
        leftovers = [p for p in os.listdir(tmp_path) if p != "streamed.bin"]
        assert leftovers == []
        mapped = LabelStore.open_mmap(path)
        oracle = TreeDistanceOracle(tree)
        pairs = uniform_pairs(tree, 100, seed=3)
        assert QueryEngine(mapped).batch_query(pairs) == [
            oracle.distance(u, v) for u, v in pairs
        ]

    def test_in_memory_baseline_matches(self, tmp_path):
        tree = make_tree("random", 150, seed=8)
        streamed, baseline = tmp_path / "a.bin", tmp_path / "b.bin"
        build_store_streaming(make_scheme_from_spec("freedman"), tree, streamed)
        build_store_in_memory(make_scheme_from_spec("freedman"), tree, baseline)
        assert streamed.read_bytes() == baseline.read_bytes()

    def test_rejects_tiny_run_buffer(self, tmp_path):
        tree = make_tree("random", 10, seed=0)
        with pytest.raises(ValueError):
            build_store_streaming(
                make_scheme_from_spec("freedman"), tree, tmp_path / "x.bin",
                run_bytes=1024,
            )


class TestEncodeStream:
    """encode_stream yields encode()'s labels in node order for every scheme."""

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_matches_encode(self, spec):
        tree = make_tree("random", 120, seed=17)
        streamed = [
            label.to_bits()
            for label in make_scheme_from_spec(spec).encode_stream(tree)
        ]
        encoded = make_scheme_from_spec(spec).encode(tree)
        assert len(streamed) == tree.n
        assert streamed == [encoded[node].to_bits() for node in range(tree.n)]


class TestStructuralWorkloads:
    def test_sibling_pairs_share_a_parent(self):
        tree = make_tree("random", 400, seed=6)
        pairs = sibling_pairs(tree, 250, seed=1)
        assert len(pairs) == 250
        for u, v in pairs:
            assert u != v
            assert tree.parent(u) == tree.parent(v)

    def test_sibling_pairs_on_a_path_degenerate_gracefully(self):
        tree = make_tree("path", 50, seed=0)
        pairs = sibling_pairs(tree, 40, seed=2)
        assert len(pairs) == 40
        for u, v in pairs:
            assert u == v or tree.parent(v) == u

    def test_khop_pairs_stay_within_radius(self):
        tree = make_tree("random", 300, seed=9)
        oracle = TreeDistanceOracle(tree)
        for hops in (1, 3, 6):
            pairs = khop_local_pairs(tree, 150, hops=hops, seed=4)
            assert len(pairs) == 150
            assert all(oracle.distance(u, v) <= hops for u, v in pairs)

    def test_registry_and_tree_requirement(self):
        assert {"uniform", "zipf", "sibling", "khop"} <= set(WORKLOADS)
        tree = make_tree("random", 100, seed=0)
        assert len(pair_workload("sibling", tree, 10, seed=0)) == 10
        assert len(pair_workload("khop", tree, 10, seed=0, hops=2)) == 10
        with pytest.raises(ValueError, match="needs the tree itself"):
            pair_workload("sibling", 100, 10)
        with pytest.raises(ValueError, match="needs the tree itself"):
            pair_workload("khop", 100, 10)
        with pytest.raises(ValueError):
            khop_local_pairs(tree, 5, hops=0)


class TestMemoryProbes:
    def test_rss_probes_report_plausible_numbers(self):
        current = current_rss_bytes()
        peak = peak_rss_bytes()
        # a running CPython interpreter is at least a few MiB resident
        assert current > 1 << 20
        assert peak >= current // 2  # peak is >= current modulo sampling noise

    def test_address_space_cap_kills_big_allocations(self):
        """Under RLIMIT_AS a beyond-cap allocation fails; proven in a child."""
        import subprocess
        import sys

        probe = (
            "from repro.scale import cap_address_space\n"
            "assert cap_address_space(512 * 1024 * 1024)\n"
            "try:\n"
            "    block = bytearray(1 << 31)\n"
            "except MemoryError:\n"
            "    print('CAPPED')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env=dict(os.environ, PYTHONPATH="src"),
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        if result.returncode != 0 and "CAPPED" not in result.stdout:
            pytest.skip(f"RLIMIT_AS not enforceable here: {result.stderr!r}")
        assert "CAPPED" in result.stdout


class TestServeMmapTarget:
    def test_open_serve_target_mmap(self, tmp_path):
        from repro.serve.supervisor import open_serve_target

        tree, _, path = _saved_store(tmp_path, "freedman")
        target, description = open_serve_target(str(path), use_mmap=True)
        assert "mmap" in description
        assert target.store.mmap_backed
        heap_target, heap_description = open_serve_target(str(path))
        assert "heap" in heap_description
        assert not heap_target.store.mmap_backed

    def test_stats_report_rss(self, tmp_path):
        from repro.serve.server import ServingCore

        tree, _, path = _saved_store(tmp_path, "freedman")
        from repro.api import DistanceIndex

        core = ServingCore(DistanceIndex.open(path, mmap=True))
        payload = core.stats()
        assert payload["rss_bytes"] > 1 << 20
