"""Top-level package API tests (the quickstart contract of the README)."""

import repro
from repro import (
    AlstrupScheme,
    FreedmanScheme,
    KDistanceScheme,
    ApproximateScheme,
    RootedTree,
    TreeDistanceOracle,
    random_prufer_tree,
    tree_from_edges,
    tree_from_parents,
)


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_readme_quickstart(self):
        tree = random_prufer_tree(200, seed=7)
        scheme = FreedmanScheme()
        labels = scheme.encode(tree)
        oracle = TreeDistanceOracle(tree)
        assert scheme.distance(labels[3], labels[42]) == oracle.distance(3, 42)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_builders_exported(self):
        tree = tree_from_parents([None, 0, 0])
        assert isinstance(tree, RootedTree)
        tree = tree_from_edges(3, [(0, 1), (1, 2)])
        assert tree.n == 3

    def test_every_headline_scheme_usable(self):
        tree = random_prufer_tree(60, seed=1)
        oracle = TreeDistanceOracle(tree)

        exact = AlstrupScheme()
        labels = exact.encode(tree)
        assert exact.distance(labels[1], labels[2]) == oracle.distance(1, 2)

        bounded = KDistanceScheme(3)
        blabels = bounded.encode(tree)
        expected = oracle.distance(1, 2)
        assert bounded.bounded_distance(blabels[1], blabels[2]) == (
            expected if expected <= 3 else None
        )

        approx = ApproximateScheme(0.5)
        alabels = approx.encode(tree)
        answer = approx.approximate_distance(alabels[1], alabels[2])
        assert oracle.distance(1, 2) <= answer <= 1.5 * oracle.distance(1, 2) + 1e-9
