"""Top-level package API tests (the quickstart contract of the README).

``test_api_surface_snapshot`` pins ``repro.api.__all__`` exactly: any
addition or removal must touch this file too, keeping changes to the public
surface deliberate.
"""

import warnings

import pytest

import repro
import repro.api
from repro import (
    AlstrupScheme,
    ApproximateScheme,
    DistanceIndex,
    FreedmanScheme,
    IndexCatalog,
    KDistanceScheme,
    RootedTree,
    TreeDistanceOracle,
    random_prufer_tree,
    tree_from_edges,
    tree_from_parents,
)

#: the canonical public surface; update deliberately alongside repro/api
EXPECTED_API_ALL = [
    "DistanceIndex",
    "IndexCatalog",
    "QueryResult",
    "CatalogError",
    "SpecError",
    "parse_spec",
    "format_spec",
    "scheme_spec",
    "make_scheme_from_spec",
    "available_specs",
    "CATALOG_MAGIC",
]


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_api_surface_snapshot(self):
        """``repro.api.__all__`` is pinned exactly (deliberate changes only)."""
        assert repro.api.__all__ == EXPECTED_API_ALL

    def test_api_surface_resolves(self):
        for name in repro.api.__all__:
            assert getattr(repro.api, name) is not None

    def test_readme_quickstart(self):
        tree = random_prufer_tree(200, seed=7)
        index = DistanceIndex.build(tree, "freedman")
        oracle = TreeDistanceOracle(tree)
        assert index.query(3, 42).value == oracle.distance(3, 42)

        catalog = IndexCatalog()
        catalog.add("backbone", index)
        assert catalog.query("backbone", 3, 42).value == oracle.distance(3, 42)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_deprecated_shims_warn_but_work(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            store_cls = repro.LabelStore
            engine_cls = repro.QueryEngine
        from repro.store import LabelStore, QueryEngine

        assert store_cls is LabelStore and engine_cls is QueryEngine
        assert all(
            issubclass(entry.category, DeprecationWarning) for entry in caught
        )
        assert len(caught) >= 2

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.no_such_name

    def test_builders_exported(self):
        tree = tree_from_parents([None, 0, 0])
        assert isinstance(tree, RootedTree)
        tree = tree_from_edges(3, [(0, 1), (1, 2)])
        assert tree.n == 3

    def test_every_headline_scheme_usable(self):
        """The label-level research surface stays importable and correct."""
        tree = random_prufer_tree(60, seed=1)
        oracle = TreeDistanceOracle(tree)

        exact = AlstrupScheme()
        labels = exact.encode(tree)
        assert exact.distance(labels[1], labels[2]) == oracle.distance(1, 2)

        bounded = KDistanceScheme(3)
        blabels = bounded.encode(tree)
        expected = oracle.distance(1, 2)
        assert bounded.bounded_distance(blabels[1], blabels[2]) == (
            expected if expected <= 3 else None
        )

        approx = ApproximateScheme(0.5)
        alabels = approx.encode(tree)
        answer = approx.approximate_distance(alabels[1], alabels[2])
        assert oracle.distance(1, 2) <= answer <= 1.5 * oracle.distance(1, 2) + 1e-9

    def test_every_headline_scheme_has_a_spec(self):
        """Facade coverage: the headline classes are reachable by spec."""
        for cls, spec in [
            (FreedmanScheme, "freedman"),
            (AlstrupScheme, "alstrup"),
            (KDistanceScheme, "k-distance:k=3"),
            (ApproximateScheme, "approximate:epsilon=0.5"),
        ]:
            index = DistanceIndex.build(random_prufer_tree(20, seed=2), spec)
            assert isinstance(index.scheme, cls)
