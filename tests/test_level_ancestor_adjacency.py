"""Tests for the level-ancestor scheme (Section 3.6) and adjacency labels."""

import random

import pytest
from hypothesis import given, settings

from repro.core.adjacency import AdjacencyLabel, AdjacencyScheme
from repro.core.kdistance import KDistanceScheme
from repro.core.level_ancestor import LevelAncestorLabel, LevelAncestorScheme
from repro.generators.workloads import make_tree
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.trees.tree import RootedTree

from repro.testing import parent_array_trees


class TestLevelAncestorScheme:
    def test_rejects_weighted_trees(self):
        tree = RootedTree([None, 0], [0, 3])
        with pytest.raises(ValueError):
            LevelAncestorScheme().encode(tree)

    def test_labels_distinct(self, any_tree):
        labels = LevelAncestorScheme().encode(any_tree)
        assert len({label.key() for label in labels.values()}) == any_tree.n

    def test_parent_chain_reaches_root(self, any_tree):
        scheme = LevelAncestorScheme()
        labels = scheme.encode(any_tree)
        key_to_node = {label.key(): node for node, label in labels.items()}
        for node in any_tree.nodes():
            current_label = labels[node]
            current_node = node
            steps = 0
            while True:
                parent_label = scheme.parent(current_label)
                parent_node = any_tree.parent(current_node)
                if parent_node is None:
                    assert parent_label is None
                    break
                assert parent_label is not None
                assert key_to_node[parent_label.key()] == parent_node
                current_label, current_node = parent_label, parent_node
                steps += 1
                assert steps <= any_tree.n

    def test_level_ancestor_queries(self, any_tree):
        scheme = LevelAncestorScheme()
        labels = scheme.encode(any_tree)
        key_to_node = {label.key(): node for node, label in labels.items()}
        oracle = TreeDistanceOracle(any_tree)
        rng = random.Random(0)
        for _ in range(60):
            node = rng.randrange(any_tree.n)
            steps = rng.randint(0, any_tree.depth(node) + 2)
            expected = oracle.level_ancestor(node, steps)
            answer = scheme.level_ancestor(labels[node], steps)
            if expected is None:
                assert answer is None
            else:
                assert answer is not None and key_to_node[answer.key()] == expected

    def test_ancestor_at_depth(self):
        tree = make_tree("path", 20)
        scheme = LevelAncestorScheme()
        labels = scheme.encode(tree)
        key_to_node = {label.key(): node for node, label in labels.items()}
        answer = scheme.ancestor_at_depth(labels[15], 4)
        assert key_to_node[answer.key()] == 4
        assert scheme.ancestor_at_depth(labels[3], 10) is None

    def test_serialisation_round_trip(self, any_tree):
        scheme = LevelAncestorScheme()
        for node, label in scheme.encode(any_tree).items():
            restored = LevelAncestorLabel.from_bits(label.to_bits())
            assert restored.key() == label.key()
            assert restored.depth == label.depth

    def test_parent_queries_survive_serialisation(self):
        tree = make_tree("random", 60, seed=1)
        scheme = LevelAncestorScheme()
        labels = scheme.encode(tree)
        key_to_node = {label.key(): node for node, label in labels.items()}
        for node in tree.nodes():
            parsed = scheme.parse(labels[node].to_bits())
            parent_label = scheme.parent(parsed)
            if tree.parent(node) is None:
                assert parent_label is None
            else:
                assert key_to_node[parent_label.key()] == tree.parent(node)

    @given(parent_array_trees(max_nodes=40))
    @settings(max_examples=30, deadline=None)
    def test_parent_property(self, tree):
        scheme = LevelAncestorScheme()
        labels = scheme.encode(tree)
        key_to_node = {label.key(): node for node, label in labels.items()}
        for node in tree.nodes():
            parent_label = scheme.parent(labels[node])
            parent_node = tree.parent(node)
            if parent_node is None:
                assert parent_label is None
            else:
                assert key_to_node[parent_label.key()] == parent_node

    def test_label_size_is_half_squared_log_shape(self):
        """Level-ancestor labels carry the whole distance array, so they are
        comparable in size to the Alstrup distance labels (Theorem 1.2 says
        they cannot be much smaller)."""
        import math

        for n in (256, 1024):
            tree = make_tree("random", n, seed=2)
            labels = LevelAncestorScheme().encode(tree)
            max_bits = max(label.bit_length() for label in labels.values())
            assert max_bits <= 6 * math.log2(n) ** 2


class TestAdjacencyScheme:
    def test_adjacency_matches_tree(self, any_tree):
        scheme = AdjacencyScheme()
        labels = scheme.encode(any_tree)
        for u in any_tree.nodes():
            for v in any_tree.nodes():
                expected = any_tree.parent(u) == v or any_tree.parent(v) == u
                assert scheme.adjacent(labels[u], labels[v]) == expected

    def test_bounded_distance_semantics(self, any_tree):
        scheme = AdjacencyScheme()
        labels = scheme.encode(any_tree)
        oracle = TreeDistanceOracle(any_tree)
        for u in any_tree.nodes():
            for v in any_tree.nodes():
                expected = oracle.distance(u, v)
                expected = expected if expected <= 1 else None
                assert scheme.bounded_distance(labels[u], labels[v]) == expected

    def test_serialisation_round_trip(self, any_tree):
        scheme = AdjacencyScheme()
        for label in scheme.encode(any_tree).values():
            assert AdjacencyLabel.from_bits(label.to_bits()) == label
            assert scheme.parse(label.to_bits()) == label

    def test_agrees_with_kdistance_k1(self):
        """The folklore adjacency labels and KDistanceScheme(k=1) answer the
        same queries."""
        tree = make_tree("random", 40, seed=3)
        adjacency = AdjacencyScheme()
        kdist = KDistanceScheme(1)
        labels_a = adjacency.encode(tree)
        labels_k = kdist.encode(tree)
        for u in tree.nodes():
            for v in tree.nodes():
                assert adjacency.bounded_distance(
                    labels_a[u], labels_a[v]
                ) == kdist.bounded_distance(labels_k[u], labels_k[v])

    def test_label_size_is_two_log_n(self):
        import math

        tree = make_tree("random", 1024, seed=4)
        labels = AdjacencyScheme().encode(tree)
        assert max(label.bit_length() for label in labels.values()) <= 4 * math.log2(1024)
