"""Differential tests for the k-distance word-level ``parse_many`` override.

``KDistanceScheme.parse_many`` decodes labels straight from the store's
packed words (no ``BitReader``, no intermediate ``MonotoneSequence``
objects); these tests pin it field-for-field against the generic
``LabelingScheme.parse_many`` route, which goes through
``KDistanceLabel.from_bits`` — the same contract
``tests/test_freedman_parse_many.py`` and ``tests/test_alstrup_parse_many.py``
enforce for the other word decoders.  Both the compact (``k < log n``,
Lemma 4.5 tables present) and simple regimes are exercised.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.core.base import LabelingScheme
from repro.core.kdistance import KDistanceScheme, _parse_word
from repro.generators.workloads import make_tree, random_pairs
from repro.oracles.exact_oracle import TreeDistanceOracle
from repro.store import LabelStore, QueryEngine
from repro.testing import parent_array_trees


def _assert_same_labels(scheme: KDistanceScheme, store: LabelStore) -> None:
    nodes = list(range(store.n))
    word_level = scheme.parse_many(store, nodes)
    generic = LabelingScheme.parse_many(scheme, store, nodes)
    assert set(word_level) == set(generic)
    for node in nodes:
        assert word_level[node] == generic[node], f"label of node {node} differs"


@pytest.mark.parametrize("family", ["random", "path", "star", "caterpillar", "broom"])
@pytest.mark.parametrize("k", [2, 16])
def test_word_level_matches_generic_across_families(family, k):
    # k=2 lands in the compact regime (position_mod + forward/backward
    # tables populated), k=16 > log2(120) in the simple regime
    tree = make_tree(family, 120, seed=11)
    scheme = KDistanceScheme(k)
    _assert_same_labels(scheme, LabelStore.encode_tree(scheme, tree))


@settings(max_examples=25, deadline=None)
@given(tree=parent_array_trees(max_nodes=40))
def test_word_level_matches_generic_on_random_trees(tree):
    scheme = KDistanceScheme(3)
    _assert_same_labels(scheme, LabelStore.encode_tree(scheme, tree))


@pytest.mark.parametrize("mode", ["compact", "simple"])
def test_parse_word_equals_from_bits_per_label(mode):
    tree = make_tree("random", 60, seed=19)
    scheme = KDistanceScheme(4, mode=mode)
    store = LabelStore.encode_tree(scheme, tree)
    for node in range(store.n):
        bits = store.label_bits(node)
        assert _parse_word(bits.to_int(), len(bits)) == scheme.parse(bits)


def test_engine_queries_through_word_parser_match_oracle():
    tree = make_tree("random", 300, seed=29)
    scheme = KDistanceScheme(5)
    engine = QueryEngine.encode_tree(scheme, tree)
    oracle = TreeDistanceOracle(tree)
    pairs = random_pairs(tree, 600, seed=31)
    expected = [
        d if (d := oracle.distance(u, v)) <= 5 else None for u, v in pairs
    ]
    assert engine.batch_query(pairs) == expected


def test_word_level_used_by_duck_typed_stores():
    """A store exposing only ``label_words`` still gets the word decoder."""

    class WordsOnlyStore:
        def __init__(self, store: LabelStore) -> None:
            self._store = store

        def label_words(self, nodes):
            return self._store.label_words(nodes)

    tree = make_tree("random", 80, seed=37)
    scheme = KDistanceScheme(3)
    store = LabelStore.encode_tree(scheme, tree)
    nodes = list(range(store.n))
    assert scheme.parse_many(WordsOnlyStore(store), nodes) == scheme.parse_many(
        store, nodes
    )
