"""Tests specific to the Freedman et al. 1/4 log² n scheme (Section 3)."""

import math
import random

import pytest
from hypothesis import given, settings

from repro.core.alstrup import AlstrupScheme
from repro.core.freedman import FreedmanLabel, FreedmanScheme
from repro.generators.workloads import make_tree
from repro.oracles.exact_oracle import TreeDistanceOracle

from repro.testing import parent_array_trees


class TestLabelStructure:
    def test_serialisation_round_trip(self):
        tree = make_tree("random", 80, seed=3)
        scheme = FreedmanScheme()
        labels = scheme.encode(tree)
        for node, label in labels.items():
            restored = FreedmanLabel.from_bits(label.to_bits())
            assert restored.node_id == label.node_id == node
            assert restored.root_distance == label.root_distance
            assert restored.domination == label.domination
            assert restored.codewords == label.codewords
            assert restored.light_weights == label.light_weights
            assert restored.fragment_refs == label.fragment_refs
            assert restored.fragment_distances == label.fragment_distances
            assert restored.entry_skip == label.entry_skip
            assert restored.entry_kept == label.entry_kept
            assert restored.entry_pushed == label.entry_pushed
            assert restored.accumulators == label.accumulators

    def test_labels_are_distinct(self):
        tree = make_tree("random", 100, seed=1)
        labels = FreedmanScheme().encode(tree)
        assert len({label.to_bits().data for label in labels.values()}) == tree.n

    def test_fragment_refs_are_monotone(self):
        tree = make_tree("random", 200, seed=2)
        for label in FreedmanScheme().encode(tree).values():
            assert label.fragment_refs == sorted(label.fragment_refs)
            assert label.fragment_distances == sorted(label.fragment_distances)
            for ref in label.fragment_refs:
                assert 0 <= ref < len(label.fragment_distances)

    def test_exceptional_entries_store_nothing(self):
        tree = make_tree("random", 150, seed=4)
        labels = FreedmanScheme().encode(tree)
        skipped = sum(
            1
            for label in labels.values()
            for level, skip in enumerate(label.entry_skip)
            if skip and len(label.entry_kept[level]) == 0
        )
        assert skipped > 0  # the exceptional edge of some level is always hit

    def test_encoding_stats_populated(self):
        scheme = FreedmanScheme()
        scheme.encode(make_tree("random", 300, seed=5))
        stats = scheme.encoding_stats
        assert set(stats) == {
            "pushed_bits",
            "fat_subtrees",
            "thin_subtrees",
            "skipped_entries",
        }
        assert stats["skipped_entries"] > 0

    def test_field_breakdown_sums_to_total(self):
        tree = make_tree("random", 120, seed=6)
        for label in FreedmanScheme().encode(tree).values():
            breakdown = label.field_breakdown()
            assert sum(breakdown.values()) == label.bit_length()
            assert breakdown["truncated_distances"] >= 0
            assert breakdown["accumulators"] >= 0

    def test_distance_array_bits_below_total(self):
        tree = make_tree("random", 150, seed=7)
        for label in FreedmanScheme().encode(tree).values():
            assert label.distance_array_bits() <= label.bit_length()


class TestAblations:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"use_fragments": False},
            {"use_accumulators": False},
            {"binarize": False},
            {"use_fragments": False, "use_accumulators": False, "binarize": False},
        ],
    )
    def test_ablated_variants_remain_correct(self, kwargs):
        scheme = FreedmanScheme(**kwargs)
        for family in ("random", "caterpillar", "star", "path"):
            tree = make_tree(family, 70, seed=8)
            oracle = TreeDistanceOracle(tree)
            labels = scheme.encode(tree)
            rng = random.Random(0)
            for _ in range(120):
                u, v = rng.randrange(tree.n), rng.randrange(tree.n)
                assert scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)

    def test_no_accumulators_means_no_pushed_bits(self):
        scheme = FreedmanScheme(use_accumulators=False)
        labels = scheme.encode(make_tree("random", 200, seed=9))
        assert scheme.encoding_stats["pushed_bits"] == 0
        assert all(
            all(pushed == 0 for pushed in label.entry_pushed) for label in labels.values()
        )

    def test_accumulators_shrink_truncated_entries(self):
        """On the adversarial (h, M)-family (x = M/2), hanging subtrees are fat
        enough for the Slack Lemma budget to be smaller than the entry, so
        bits really are pushed to dominated labels."""
        from repro.lowerbounds.hm_trees import (
            build_hm_tree,
            hm_parameter_count,
            subdivide_to_unweighted,
        )

        instance = build_hm_tree(5, 16, [8] * hm_parameter_count(5))
        tree, _ = subdivide_to_unweighted(instance.tree)
        with_acc = FreedmanScheme()
        without_acc = FreedmanScheme(use_accumulators=False)
        labels_with = with_acc.encode(tree)
        labels_without = without_acc.encode(tree)
        kept_with = sum(
            len(bits) for label in labels_with.values() for bits in label.entry_kept
        )
        kept_without = sum(
            len(bits) for label in labels_without.values() for bits in label.entry_kept
        )
        assert with_acc.encoding_stats["pushed_bits"] > 0
        assert without_acc.encoding_stats["pushed_bits"] == 0
        assert kept_with < kept_without


class TestCorrectnessEdgeCases:
    def test_single_and_two_node_trees(self):
        scheme = FreedmanScheme()
        one = scheme.encode(make_tree("path", 1))
        assert scheme.distance(one[0], one[0]) == 0
        two = scheme.encode(make_tree("path", 2))
        assert scheme.distance(two[0], two[1]) == 1

    def test_deep_path(self):
        tree = make_tree("path", 500)
        scheme = FreedmanScheme()
        oracle = TreeDistanceOracle(tree)
        labels = scheme.encode(tree)
        for u, v in [(0, 499), (250, 251), (0, 0), (100, 400), (499, 0)]:
            assert scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)

    def test_wide_star(self):
        tree = make_tree("star", 500)
        scheme = FreedmanScheme()
        labels = scheme.encode(tree)
        assert scheme.distance(labels[0], labels[123]) == 1
        assert scheme.distance(labels[7], labels[123]) == 2

    def test_parse_is_inverse_of_to_bits(self):
        scheme = FreedmanScheme()
        labels = scheme.encode(make_tree("random", 40, seed=14))
        oracle = TreeDistanceOracle(make_tree("random", 40, seed=14))
        for u in (0, 5, 17):
            for v in (3, 22, 39):
                parsed_u = scheme.parse(labels[u].to_bits())
                parsed_v = scheme.parse(labels[v].to_bits())
                assert scheme.distance(parsed_u, parsed_v) == oracle.distance(u, v)

    @given(parent_array_trees(max_nodes=45))
    @settings(max_examples=40, deadline=None)
    def test_matches_oracle_property(self, tree):
        scheme = FreedmanScheme()
        oracle = TreeDistanceOracle(tree)
        labels = scheme.encode(tree)
        rng = random.Random(11)
        for _ in range(40):
            u, v = rng.randrange(tree.n), rng.randrange(tree.n)
            assert scheme.distance(labels[u], labels[v]) == oracle.distance(u, v)

    @given(parent_array_trees(max_nodes=30))
    @settings(max_examples=20, deadline=None)
    def test_agrees_with_alstrup_property(self, tree):
        """Independent implementations must agree with each other."""
        freedman = FreedmanScheme()
        alstrup = AlstrupScheme()
        labels_f = freedman.encode(tree)
        labels_a = alstrup.encode(tree)
        for u in tree.nodes():
            for v in tree.nodes():
                assert freedman.distance(labels_f[u], labels_f[v]) == alstrup.distance(
                    labels_a[u], labels_a[v]
                )


class TestSizeBehaviour:
    def test_push_machinery_fires_on_adversarial_family(self):
        """On random trees at practical sizes the Slack Lemma budget almost
        always exceeds the entry length, so entries are stored in full (this
        is recorded in EXPERIMENTS.md).  On the (h, M) lower-bound family the
        budget is tight and bits are pushed; without fragments the effect
        also shows on balanced binary trees."""
        from repro.lowerbounds.hm_trees import (
            build_hm_tree,
            hm_parameter_count,
            subdivide_to_unweighted,
        )

        instance = build_hm_tree(4, 16, [8] * hm_parameter_count(4))
        tree, _ = subdivide_to_unweighted(instance.tree)
        scheme = FreedmanScheme()
        scheme.encode(tree)
        assert scheme.encoding_stats["pushed_bits"] > 0
        assert scheme.encoding_stats["fat_subtrees"] > 0

        no_fragments = FreedmanScheme(use_fragments=False)
        no_fragments.encode(make_tree("balanced_binary", 2047, seed=0))
        assert no_fragments.encoding_stats["pushed_bits"] > 0

    def test_growth_is_polylogarithmic(self):
        sizes = {}
        for n in (256, 1024, 4096):
            labels = FreedmanScheme().encode(make_tree("random", n, seed=13))
            sizes[n] = max(label.bit_length() for label in labels.values())
        assert sizes[4096] <= sizes[256] * (math.log2(4096) / math.log2(256)) ** 2 * 1.5
