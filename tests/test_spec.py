"""Tests for string scheme specs: parse/format round trips and error messages."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import LabelingScheme
from repro.core.registry import (
    ALL_SCHEME_NAMES,
    SCHEMES,
    SpecError,
    format_spec,
    make_scheme_from_spec,
    parse_spec,
    scheme_spec,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_spec("freedman") == ("freedman", {})

    def test_parameters(self):
        assert parse_spec("k-distance:k=4") == ("k-distance", {"k": 4})
        assert parse_spec("approximate:epsilon=0.1") == (
            "approximate",
            {"epsilon": 0.1},
        )

    def test_aliases_normalised(self):
        assert parse_spec("kdistance:k=4") == ("k-distance", {"k": 4})
        assert parse_spec("approx:eps=0.1") == ("approximate", {"epsilon": 0.1})

    def test_value_types(self):
        name, params = parse_spec("freedman:binarize=false,use_fragments=true")
        assert params == {"binarize": False, "use_fragments": True}
        assert parse_spec("k-distance:k=4,mode=simple")[1] == {
            "k": 4,
            "mode": "simple",
        }

    def test_whitespace_tolerated(self):
        assert parse_spec(" k-distance : k = 4 ") == ("k-distance", {"k": 4})

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", ":k=4", "freedman:", "k-distance:k", "k-distance:=4",
         "k-distance:k=", "k-distance:k=1,k=2"],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(SpecError):
            parse_spec(bad)


class TestFormatSpec:
    def test_no_params(self):
        assert format_spec("freedman") == "freedman"
        assert format_spec("freedman", {}) == "freedman"

    def test_defaults_omitted(self):
        assert format_spec("k-distance", {"k": 4, "mode": "auto"}) == "k-distance:k=4"
        assert (
            format_spec("freedman", {"binarize": True, "use_fragments": True,
                                     "use_accumulators": True})
            == "freedman"
        )

    def test_non_defaults_kept_sorted(self):
        assert (
            format_spec("freedman", {"use_fragments": False, "binarize": False})
            == "freedman:binarize=false,use_fragments=false"
        )

    def test_name_alias_normalised(self):
        assert format_spec("kdistance", {"k": 2}) == "k-distance:k=2"


def registered_instances() -> list[LabelingScheme]:
    """One live instance per registered scheme name (all three families)."""
    schemes = [factory() for factory in SCHEMES.values()]
    schemes.append(make_scheme_from_spec("k-distance:k=3"))
    schemes.append(make_scheme_from_spec("approximate:epsilon=0.25"))
    return schemes


class TestRoundTrip:
    @pytest.mark.parametrize(
        "scheme", registered_instances(), ids=lambda scheme: scheme_spec(scheme)
    )
    def test_params_round_trip(self, scheme):
        """``(name, params())`` -> string -> scheme rebuilds equal params."""
        spec = format_spec(scheme.name, scheme.params())
        rebuilt = make_scheme_from_spec(spec)
        assert type(rebuilt) is type(scheme)
        assert rebuilt.params() == scheme.params()
        assert scheme_spec(rebuilt) == spec

    def test_format_parse_is_fixed_point_for_names(self):
        for name in ALL_SCHEME_NAMES:
            canonical = format_spec(*parse_spec(name))
            assert format_spec(*parse_spec(canonical)) == canonical

    @settings(max_examples=60, deadline=None)
    @given(k=st.integers(min_value=1, max_value=64),
           mode=st.sampled_from(["auto", "compact", "simple"]))
    def test_kdistance_round_trip_hypothesis(self, k, mode):
        spec = format_spec("k-distance", {"k": k, "mode": mode})
        assert format_spec(*parse_spec(spec)) == spec
        scheme = make_scheme_from_spec(spec)
        assert scheme.k == k and scheme.params()["mode"] == mode

    @settings(max_examples=60, deadline=None)
    @given(eps=st.floats(min_value=0.01, max_value=4.0,
                         allow_nan=False, allow_infinity=False))
    def test_approximate_round_trip_hypothesis(self, eps):
        spec = format_spec("approximate", {"epsilon": eps})
        assert format_spec(*parse_spec(spec)) == spec
        assert make_scheme_from_spec(spec).epsilon == pytest.approx(eps)

    @settings(max_examples=40, deadline=None)
    @given(binarize=st.booleans(), fragments=st.booleans(),
           accumulators=st.booleans())
    def test_freedman_ablation_round_trip_hypothesis(
        self, binarize, fragments, accumulators
    ):
        params = {
            "binarize": binarize,
            "use_fragments": fragments,
            "use_accumulators": accumulators,
        }
        spec = format_spec("freedman", params)
        rebuilt = make_scheme_from_spec(spec)
        assert rebuilt.params() == params
        assert format_spec(*parse_spec(spec)) == spec


class TestResolutionErrors:
    def test_unknown_name_lists_known(self):
        with pytest.raises(SpecError) as excinfo:
            make_scheme_from_spec("no-such-scheme")
        message = str(excinfo.value)
        assert "no-such-scheme" in message and "freedman" in message

    def test_invalid_k_names_spec_and_reason(self):
        with pytest.raises(SpecError) as excinfo:
            make_scheme_from_spec("kdistance:k=0")
        message = str(excinfo.value)
        assert "kdistance:k=0" in message and "k must be at least 1" in message

    def test_invalid_epsilon(self):
        with pytest.raises(SpecError) as excinfo:
            make_scheme_from_spec("approx:eps=-1")
        assert "epsilon must be positive" in str(excinfo.value)

    def test_unknown_constructor_parameter(self):
        with pytest.raises(SpecError):
            make_scheme_from_spec("freedman:bogus=1")

    def test_alias_scheme_rejects_params(self):
        with pytest.raises(SpecError):
            make_scheme_from_spec("freedman-no-fragments:k=3")
