"""Tests for Elias gamma/delta codes and the auxiliary integer codes."""

import pytest
from hypothesis import given, strategies as st

from repro.encoding.bitio import BitReader, BitWriter
from repro.encoding.elias import (
    decode_delta,
    decode_gamma,
    delta_length,
    encode_delta,
    encode_gamma,
    gamma_length,
)
from repro.encoding.varint import (
    bounded_width,
    decode_bounded,
    decode_unary,
    encode_bounded,
    encode_unary,
)


class TestGamma:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 12345])
    def test_round_trip(self, value):
        writer = BitWriter()
        encode_gamma(writer, value)
        assert decode_gamma(BitReader(writer.getvalue())) == value

    def test_length_matches_encoding(self):
        for value in range(0, 300):
            writer = BitWriter()
            encode_gamma(writer, value)
            assert len(writer) == gamma_length(value)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_gamma(BitWriter(), -1)
        with pytest.raises(ValueError):
            gamma_length(-1)

    @given(st.lists(st.integers(min_value=0, max_value=10**6), max_size=50))
    def test_concatenated_stream(self, values):
        writer = BitWriter()
        for value in values:
            encode_gamma(writer, value)
        reader = BitReader(writer.getvalue())
        assert [decode_gamma(reader) for _ in values] == values
        assert reader.remaining() == 0


class TestDelta:
    @pytest.mark.parametrize("value", [0, 1, 2, 3, 7, 8, 100, 12345, 10**9])
    def test_round_trip(self, value):
        writer = BitWriter()
        encode_delta(writer, value)
        assert decode_delta(BitReader(writer.getvalue())) == value

    def test_length_matches_encoding(self):
        for value in range(0, 300):
            writer = BitWriter()
            encode_delta(writer, value)
            assert len(writer) == delta_length(value)

    def test_delta_shorter_than_gamma_for_large_values(self):
        assert delta_length(10**6) < gamma_length(10**6)

    @given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=50))
    def test_concatenated_stream(self, values):
        writer = BitWriter()
        for value in values:
            encode_delta(writer, value)
        reader = BitReader(writer.getvalue())
        assert [decode_delta(reader) for _ in values] == values


class TestUnaryAndBounded:
    @given(st.integers(min_value=0, max_value=300))
    def test_unary_round_trip(self, value):
        writer = BitWriter()
        encode_unary(writer, value)
        assert decode_unary(BitReader(writer.getvalue())) == value

    def test_unary_rejects_negative(self):
        with pytest.raises(ValueError):
            encode_unary(BitWriter(), -3)

    def test_bounded_width(self):
        assert bounded_width(0) == 1
        assert bounded_width(1) == 1
        assert bounded_width(7) == 3
        assert bounded_width(8) == 4

    @given(st.integers(min_value=0, max_value=1000))
    def test_bounded_round_trip(self, value):
        universe = 1000
        writer = BitWriter()
        encode_bounded(writer, value, universe)
        assert decode_bounded(BitReader(writer.getvalue()), universe) == value

    def test_bounded_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            encode_bounded(BitWriter(), 5, 4)
