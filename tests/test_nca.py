"""Tests for the LCA oracle, light-depth labels and the NCA labeling."""

import random

from hypothesis import given, settings

from repro.nca.labels import LightDepthLabel, LightDepthLabeling
from repro.nca.lca_oracle import LCAOracle
from repro.nca.nca_labeling import NCALabeling
from repro.trees.collapsed import CollapsedTree
from repro.trees.heavy_path import HeavyPathDecomposition
from repro.trees.tree import RootedTree

from repro.testing import parent_array_trees


def naive_lca(tree: RootedTree, u: int, v: int) -> int:
    ancestors = set(tree.path_to_root(u))
    for node in tree.path_to_root(v):
        if node in ancestors:
            return node
    raise AssertionError("no common ancestor")


class TestLCAOracle:
    def test_matches_naive(self, any_tree):
        oracle = LCAOracle(any_tree)
        rng = random.Random(0)
        for _ in range(100):
            u = rng.randrange(any_tree.n)
            v = rng.randrange(any_tree.n)
            assert oracle.query(u, v) == naive_lca(any_tree, u, v)

    def test_distance_through_lca(self, any_tree):
        oracle = LCAOracle(any_tree)
        rng = random.Random(1)
        for _ in range(50):
            u = rng.randrange(any_tree.n)
            assert oracle.distance(u, u) == 0
            v = rng.randrange(any_tree.n)
            assert oracle.distance(u, v) == oracle.distance(v, u)

    @given(parent_array_trees(max_nodes=40))
    @settings(max_examples=40, deadline=None)
    def test_lca_property(self, tree):
        oracle = LCAOracle(tree)
        rng = random.Random(2)
        for _ in range(20):
            u = rng.randrange(tree.n)
            v = rng.randrange(tree.n)
            assert oracle.query(u, v) == naive_lca(tree, u, v)


class TestLightDepthLabeling:
    def test_lightdepth_of_nca_matches_oracle(self, any_tree):
        decomposition = HeavyPathDecomposition(any_tree)
        collapsed = CollapsedTree(decomposition)
        labeling = LightDepthLabeling(any_tree, collapsed)
        labels = labeling.encode()
        oracle = LCAOracle(any_tree)
        rng = random.Random(3)
        for _ in range(150):
            u = rng.randrange(any_tree.n)
            v = rng.randrange(any_tree.n)
            nca = oracle.query(u, v)
            expected = decomposition.light_depth(nca)
            assert LightDepthLabeling.lightdepth_of_nca(labels[u], labels[v]) == expected

    def test_label_sizes_logarithmic(self, any_tree):
        import math

        labeling = LightDepthLabeling(any_tree)
        labels = labeling.encode()
        bound = 12 * (math.log2(any_tree.n) + 2) + 16
        assert max(label.bit_length() for label in labels.values()) <= bound

    def test_serialisation_round_trip(self, any_tree):
        labeling = LightDepthLabeling(any_tree)
        for node in any_tree.nodes():
            label = labeling.label(node)
            restored = LightDepthLabel.from_bits(label.to_bits())
            assert restored == label

    @given(parent_array_trees(max_nodes=40))
    @settings(max_examples=30, deadline=None)
    def test_lightdepth_property(self, tree):
        decomposition = HeavyPathDecomposition(tree)
        collapsed = CollapsedTree(decomposition)
        labeling = LightDepthLabeling(tree, collapsed)
        labels = labeling.encode()
        oracle = LCAOracle(tree)
        rng = random.Random(4)
        for _ in range(25):
            u = rng.randrange(tree.n)
            v = rng.randrange(tree.n)
            assert LightDepthLabeling.lightdepth_of_nca(
                labels[u], labels[v]
            ) == decomposition.light_depth(oracle.query(u, v))


class TestNCALabeling:
    def test_returns_canonical_nca_label(self, any_tree):
        labeling = NCALabeling(any_tree)
        labels = labeling.encode()
        oracle = LCAOracle(any_tree)
        rng = random.Random(5)
        for _ in range(100):
            u = rng.randrange(any_tree.n)
            v = rng.randrange(any_tree.n)
            nca_label, lightdepth, root_distance = NCALabeling.nca(labels[u], labels[v])
            nca = oracle.query(u, v)
            assert root_distance == any_tree.root_distance(nca)
            assert nca_label.key() == labels[nca].key()
            assert lightdepth == HeavyPathDecomposition(any_tree).light_depth(nca)

    def test_labels_are_distinct(self, any_tree):
        labels = NCALabeling(any_tree).encode()
        keys = {label.key() for label in labels.values()}
        assert len(keys) == any_tree.n

    def test_distance_helper(self, any_tree):
        labeling = NCALabeling(any_tree)
        labels = labeling.encode()
        oracle = LCAOracle(any_tree)
        rng = random.Random(6)
        for _ in range(50):
            u = rng.randrange(any_tree.n)
            v = rng.randrange(any_tree.n)
            assert NCALabeling.distance(labels[u], labels[v]) == oracle.distance(u, v)

    def test_serialisation_round_trip(self, any_tree):
        from repro.nca.nca_labeling import NCALabel

        labeling = NCALabeling(any_tree)
        for node in list(any_tree.nodes())[:20]:
            label = labeling.label(node)
            assert NCALabel.from_bits(label.to_bits()).key() == label.key()
