"""Differential tests: packed bit layer vs. the frozen string-backed reference.

The word-packed :mod:`repro.encoding.bitio` must be observationally
identical to the original character-per-bit implementation preserved in
:mod:`repro.encoding.bitio_reference`.  Hypothesis drives both through the
same operations — value semantics, slicing, concatenation, byte packing,
writer/reader op sequences and the Elias codes — and every divergence is a
bug.  A second group asserts that stores saved by the pre-packing code still
load byte-identically and answer identically (fixtures under
``tests/data/`` were written by the string-backed implementation).
"""

from __future__ import annotations

import hashlib
import json
import os

import pytest
from hypothesis import given, strategies as st

from repro.encoding import bitio_reference as ref
from repro.encoding.bitio import BitError, BitReader, BitWriter, Bits
from repro.encoding.elias import (
    decode_delta,
    decode_gamma,
    encode_delta,
    encode_gamma,
)
from repro.encoding.monotone import MonotoneSequence
from repro.encoding.varint import decode_unary, encode_unary
from repro.testing import monotone_sequences

DATA_DIR = os.path.join(os.path.dirname(__file__), "data")

bit_strings = st.text(alphabet="01", max_size=160)
small_ints = st.integers(min_value=0, max_value=1 << 40)


class TestBitsDifferential:
    @given(bit_strings)
    def test_construction_and_views(self, data):
        packed = Bits(data)
        reference = ref.Bits(data)
        assert packed.data == reference.data
        assert len(packed) == len(reference)
        assert packed.to_int() == reference.to_int()
        assert bool(packed) == bool(reference)
        assert list(packed) == list(reference)
        assert str(packed) == str(reference)

    @given(bit_strings, bit_strings)
    def test_concatenation_and_equality(self, a, b):
        assert (Bits(a) + Bits(b)).data == (ref.Bits(a) + ref.Bits(b)).data
        assert (Bits(a) == Bits(b)) == (ref.Bits(a) == ref.Bits(b))

    @given(
        bit_strings,
        st.integers(min_value=-200, max_value=200),
        st.integers(min_value=-200, max_value=200),
        st.sampled_from([None, 1, 2, -1, -3]),
    )
    def test_slicing(self, data, start, stop, step):
        assert Bits(data)[start:stop:step].data == ref.Bits(data)[start:stop:step].data

    @given(bit_strings, st.integers(min_value=-200, max_value=200))
    def test_indexing(self, data, index):
        try:
            expected = ref.Bits(data)[index].data
        except IndexError:
            with pytest.raises(IndexError):
                Bits(data)[index]
        else:
            assert Bits(data)[index].data == expected

    @given(small_ints)
    def test_from_int_no_width(self, value):
        assert Bits.from_int(value).data == ref.Bits.from_int(value).data

    @given(small_ints, st.integers(min_value=0, max_value=64))
    def test_from_int_width(self, value, width):
        try:
            expected = ref.Bits.from_int(value, width).data
        except BitError:
            with pytest.raises(BitError):
                Bits.from_int(value, width)
        else:
            assert Bits.from_int(value, width).data == expected

    @given(bit_strings)
    def test_to_bytes(self, data):
        assert Bits(data).to_bytes() == ref.Bits(data).to_bytes()

    @given(bit_strings)
    def test_from_bytes_round_trip(self, data):
        payload = ref.Bits(data).to_bytes()
        unpacked = Bits.from_bytes(payload, len(data))
        assert unpacked.data == data
        assert Bits.from_bytes(memoryview(payload), len(data)) == unpacked

    @given(bit_strings)
    def test_hashable_consistent_with_equality(self, data):
        assert hash(Bits(data)) == hash(Bits(data))
        assert Bits(data) == Bits(data)

    def test_invalid_characters_match_reference(self):
        for bad in ("01x", "2", "0 1", "0_1", "+1", "-1", "０1"):
            with pytest.raises(BitError):
                Bits(bad)
            with pytest.raises(BitError):
                ref.Bits(bad)


# one writer op: (kind, payload)
writer_ops = st.one_of(
    st.tuples(st.just("bit"), st.integers(min_value=0, max_value=1)),
    st.tuples(st.just("bits"), bit_strings),
    st.tuples(
        st.just("int"),
        st.tuples(small_ints, st.integers(min_value=0, max_value=64)),
    ),
    st.tuples(st.just("zeros"), st.integers(min_value=0, max_value=70)),
    st.tuples(st.just("unary"), st.integers(min_value=0, max_value=70)),
)


def _apply_writer_op(writer, op):
    kind, payload = op
    if kind == "bit":
        writer.write_bit(payload)
    elif kind == "bits":
        writer.write_bits(payload)
    elif kind == "int":
        value, width = payload
        writer.write_int(value, width)
    elif kind == "zeros":
        writer.write_zeros(payload)
    else:
        writer.write_unary(payload)


class TestWriterReaderDifferential:
    @given(st.lists(writer_ops, max_size=30))
    def test_writer_sequences(self, ops):
        packed_writer = BitWriter()
        reference_writer = ref.BitWriter()
        for op in ops:
            try:
                _apply_writer_op(reference_writer, op)
            except BitError:
                with pytest.raises(BitError):
                    _apply_writer_op(packed_writer, op)
            else:
                _apply_writer_op(packed_writer, op)
            assert len(packed_writer) == len(reference_writer)
        assert packed_writer.getvalue().data == reference_writer.getvalue().data

    @given(bit_strings, st.data())
    def test_reader_sequences(self, data, draw):
        packed_reader = BitReader(Bits(data))
        reference_reader = ref.BitReader(ref.Bits(data))
        for _ in range(draw.draw(st.integers(min_value=0, max_value=20))):
            op = draw.draw(
                st.sampled_from(["bit", "bits", "int", "unary", "peek", "seek"])
            )
            if op == "seek":
                position = draw.draw(st.integers(min_value=0, max_value=len(data)))
                packed_reader.seek(position)
                reference_reader.seek(position)
                continue
            count = draw.draw(st.integers(min_value=0, max_value=12))
            try:
                if op == "bit":
                    expected = reference_reader.read_bit()
                elif op == "bits":
                    expected = reference_reader.read_bits(count).data
                elif op == "int":
                    expected = reference_reader.read_int(count)
                elif op == "unary":
                    expected = reference_reader.read_unary()
                else:
                    expected = reference_reader.peek_bit()
            except BitError:
                with pytest.raises(BitError):
                    if op == "bit":
                        packed_reader.read_bit()
                    elif op == "bits":
                        packed_reader.read_bits(count)
                    elif op == "int":
                        packed_reader.read_int(count)
                    elif op == "unary":
                        packed_reader.read_unary()
                    else:
                        packed_reader.peek_bit()
                # a failed read must leave both cursors in agreement
                packed_reader.seek(reference_reader.position)
                continue
            if op == "bit":
                assert packed_reader.read_bit() == expected
            elif op == "bits":
                assert packed_reader.read_bits(count).data == expected
            elif op == "int":
                assert packed_reader.read_int(count) == expected
            elif op == "unary":
                assert packed_reader.read_unary() == expected
            else:
                assert packed_reader.peek_bit() == expected
            assert packed_reader.position == reference_reader.position

    @given(bit_strings)
    def test_reader_from_bytes_matches_wrapping(self, data):
        payload = Bits(data).to_bytes()
        direct = BitReader.from_bytes(memoryview(payload), len(data))
        wrapped = BitReader(Bits.from_bytes(payload, len(data)))
        assert direct.remaining() == wrapped.remaining() == len(data)
        for _ in range(len(data)):
            assert direct.read_bit() == wrapped.read_bit()


class TestCodecsDifferential:
    @given(st.lists(small_ints, max_size=20))
    def test_gamma_bitstream_identical(self, values):
        packed_writer = BitWriter()
        reference_writer = ref.BitWriter()
        for value in values:
            encode_gamma(packed_writer, value)
            encode_gamma(reference_writer, value)
        packed = packed_writer.getvalue()
        assert packed.data == reference_writer.getvalue().data
        reader = BitReader(packed)
        assert [decode_gamma(reader) for _ in values] == values

    @given(st.lists(small_ints, max_size=20))
    def test_delta_bitstream_identical(self, values):
        packed_writer = BitWriter()
        reference_writer = ref.BitWriter()
        for value in values:
            encode_delta(packed_writer, value)
            encode_delta(reference_writer, value)
        packed = packed_writer.getvalue()
        assert packed.data == reference_writer.getvalue().data
        reader = BitReader(packed)
        assert [decode_delta(reader) for _ in values] == values

    @given(st.lists(st.integers(min_value=0, max_value=300), max_size=12))
    def test_unary_bitstream_identical(self, values):
        packed_writer = BitWriter()
        reference_writer = ref.BitWriter()
        for value in values:
            encode_unary(packed_writer, value)
            encode_unary(reference_writer, value)
        packed = packed_writer.getvalue()
        assert packed.data == reference_writer.getvalue().data
        reader = BitReader(packed)
        assert [decode_unary(reader) for _ in values] == values

    @given(monotone_sequences())
    def test_monotone_encoding_round_trip(self, values):
        sequence = MonotoneSequence(values)
        restored = MonotoneSequence.from_bits(sequence.bits)
        assert restored.to_list() == values


class TestLegacyStoreCompatibility:
    """Stores written by the string-backed code must be bit-for-bit stable."""

    @pytest.fixture(scope="class")
    def expected(self):
        with open(os.path.join(DATA_DIR, "legacy_store_expected.json")) as handle:
            return json.load(handle)

    @pytest.mark.parametrize("name", ["freedman", "hld", "kdistance"])
    def test_legacy_store_round_trip(self, expected, name):
        from repro.store import LabelStore, QueryEngine

        record = expected[name]
        path = os.path.join(DATA_DIR, f"legacy_store_{name}.bin")
        store = LabelStore.load(path)
        assert store.n == record["n"]
        assert store.total_label_bits == record["total_label_bits"]
        assert [store.bit_length(i) for i in range(8)] == record["bit_lengths_head"]
        # re-serialisation is byte-identical to what the old code wrote
        assert hashlib.sha256(store.to_bytes()).hexdigest() == record["sha256"]
        # and the served answers are unchanged
        engine = QueryEngine(store)
        pairs = [tuple(pair) for pair in record["pairs"]]
        assert engine.batch_query(pairs) == record["answers"]

    @pytest.mark.parametrize("name", ["freedman", "hld", "kdistance"])
    def test_legacy_labels_reencode_identically(self, expected, name):
        """parse -> to_bits -> to_bytes reproduces the stored payload."""
        from repro.store import LabelStore

        path = os.path.join(DATA_DIR, f"legacy_store_{name}.bin")
        store = LabelStore.load(path)
        scheme = store.make_scheme()
        for node in range(store.n):
            bits = store.label_bits(node)
            label = scheme.parse(bits)
            assert label.to_bits() == bits
            assert bits.to_bytes() == bytes(store.raw(node))
