"""Approximate evolutionary distances in a large phylogeny.

A phylogenetic tree over many taxa is a natural workload for approximate
distance labels: pairwise path lengths ("how far apart are two species in
the tree?") are queried constantly, but a multiplicative error of a few
percent is perfectly acceptable — and the (1+eps) labels of Section 5 are an
order of magnitude smaller than exact labels.

Run with::

    python examples/phylogeny_distances.py
"""

from __future__ import annotations

import random

from repro import DistanceIndex, TreeDistanceOracle
from repro.trees.tree import RootedTree


def random_phylogeny(taxa: int, seed: int = 0) -> RootedTree:
    """A random binary phylogeny: repeatedly split a random leaf into two."""
    rng = random.Random(seed)
    parents: list[int | None] = [None]
    leaves = [0]
    while len(leaves) < taxa:
        split = leaves.pop(rng.randrange(len(leaves)))
        for _ in range(2):
            parents.append(split)
            leaves.append(len(parents) - 1)
    return RootedTree(parents)


def main() -> None:
    taxa = 4000
    tree = random_phylogeny(taxa, seed=3)
    oracle = TreeDistanceOracle(tree)
    print(f"phylogeny with {taxa} taxa ({tree.n} tree nodes), height {tree.height()}")

    exact = DistanceIndex.build(tree, "alstrup")
    exact_bits = exact.stats()["max_label_bits"]

    print("\n eps    max label bits   worst stretch on 300 sampled pairs")
    rng = random.Random(9)
    pairs = [(rng.randrange(tree.n), rng.randrange(tree.n)) for _ in range(300)]
    for eps in (1.0, 0.25, 0.05):
        index = DistanceIndex.build(tree, f"approximate:epsilon={eps}")
        worst = 1.0
        for (u, v), result in zip(pairs, index.batch(pairs)):
            reference = oracle.distance(u, v)
            if reference:
                worst = max(worst, result.value / reference)
        bits = index.stats()["max_label_bits"]
        print(f" {eps:4.2f}   {bits:14d}   {worst:.3f}  "
              f"(allowed {index.query(0, 0).ratio_bound:.2f})")

    print(f"\nexact labels for comparison: {exact_bits} bits")


if __name__ == "__main__":
    main()
