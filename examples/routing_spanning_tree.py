"""Distance labels for a spanning tree of a communication network.

The introduction of the paper motivates tree distance labels through
distance oracles for general graphs: such oracles label spanning trees
rooted at judiciously chosen vertices.  This example builds a random
network, extracts a BFS spanning tree, labels it, and shows how two nodes
estimate their network distance from their labels alone (exact along the
tree, an upper bound for the graph).

Run with::

    python examples/routing_spanning_tree.py
"""

from __future__ import annotations

import random

from repro import DistanceIndex, TreeDistanceOracle
from repro.trees.builder import tree_from_edges


def build_random_network(nodes: int, extra_edges: int, seed: int = 0):
    """A connected random graph given as an edge list (no networkx needed)."""
    rng = random.Random(seed)
    edges = [(node, rng.randrange(node)) for node in range(1, nodes)]
    edge_set = {tuple(sorted(edge)) for edge in edges}
    while len(edge_set) < nodes - 1 + extra_edges:
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        if a != b:
            edge_set.add(tuple(sorted((a, b))))
    return sorted(edge_set)


def bfs_spanning_tree(nodes: int, edges, root: int = 0):
    """Edges of a BFS spanning tree of the graph."""
    from collections import deque

    adjacency = [[] for _ in range(nodes)]
    for a, b in edges:
        adjacency[a].append(b)
        adjacency[b].append(a)
    parent = {root: None}
    queue = deque([root])
    tree_edges = []
    while queue:
        node = queue.popleft()
        for neighbour in adjacency[node]:
            if neighbour not in parent:
                parent[neighbour] = node
                tree_edges.append((node, neighbour))
                queue.append(neighbour)
    return tree_edges


def main() -> None:
    nodes, extra = 3000, 1500
    graph_edges = build_random_network(nodes, extra, seed=5)
    spanning_edges = bfs_spanning_tree(nodes, graph_edges)
    tree = tree_from_edges(nodes, spanning_edges, root=0)

    print(f"network: {nodes} routers, {len(graph_edges)} links")
    print(f"spanning tree rooted at router 0, height {tree.height()}")

    index = DistanceIndex.build(tree, "freedman")
    stats = index.stats()
    print(f"labels: max {stats['max_label_bits']} bits, "
          f"average {stats['total_label_bits'] / stats['n']:.1f} bits")
    print("each router stores only its own label; no routing table needed\n")

    oracle = TreeDistanceOracle(tree)
    rng = random.Random(1)
    print("router pair      tree distance (from labels)   check")
    for _ in range(5):
        a, b = rng.randrange(nodes), rng.randrange(nodes)
        from_labels = index.query(a, b).value
        print(f"{a:6d} -> {b:6d}   {from_labels:10d}                  {oracle.distance(a, b)}")


if __name__ == "__main__":
    main()
