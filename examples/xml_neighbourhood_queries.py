"""Bounded-distance queries over an XML-like document hierarchy.

XML processing engines often need to decide whether two elements are close
relatives ("is this node within k levels/steps of that one?") without
materialising the whole document.  The k-distance labels of Section 4 answer
exactly this from two short labels: the exact distance when it is at most k,
and "further than k" otherwise.

Run with::

    python examples/xml_neighbourhood_queries.py
"""

from __future__ import annotations

import math
import random

from repro import DistanceIndex, TreeDistanceOracle
from repro.trees.tree import RootedTree


def random_document(elements: int, seed: int = 0) -> RootedTree:
    """A DOM-like tree: shallow, with bursts of many children per element."""
    rng = random.Random(seed)
    parents: list[int | None] = [None]
    open_elements = [0]
    while len(parents) < elements:
        container = rng.choice(open_elements)
        children = min(rng.randint(1, 12), elements - len(parents))
        for _ in range(children):
            parents.append(container)
            if rng.random() < 0.35:
                open_elements.append(len(parents) - 1)
    return RootedTree(parents)


def main() -> None:
    document = random_document(5000, seed=21)
    oracle = TreeDistanceOracle(document)
    print(f"document with {document.n} elements, height {document.height()}")

    for k in (2, 4, 8):
        index = DistanceIndex.build(document, f"k-distance:k={k}")
        stats = index.stats()
        print(
            f"\nk = {k}: max label {stats['max_label_bits']} bits "
            f"(log2 n = {math.log2(document.n):.1f} bits), "
            f"avg {stats['total_label_bits'] / stats['n']:.1f} bits"
        )

        rng = random.Random(k)
        shown = 0
        while shown < 4:
            u, v = rng.randrange(document.n), rng.randrange(document.n)
            result = index.query(u, v)
            truth = oracle.distance(u, v)
            verdict = (
                f"distance {result.value}"
                if result.within_bound
                else f"further than {k}"
            )
            print(f"  elements {u:5d} / {v:5d}: {verdict:18s} (exact distance {truth})")
            shown += 1


if __name__ == "__main__":
    main()
