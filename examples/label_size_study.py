"""Reproduce the paper's summary table empirically (label-size study).

Sweeps the exact, k-distance and approximate schemes over tree sizes and
prints measured label sizes next to the bound formulas from the paper —
the same numbers EXPERIMENTS.md records.

Run with::

    python examples/label_size_study.py            # moderate sizes
    python examples/label_size_study.py --large    # adds n = 16384
"""

from __future__ import annotations

import sys

from repro.analysis.experiments import (
    run_table1_approx,
    run_table1_exact,
    run_table1_kdistance,
)
from repro.analysis.reporting import format_table


def main() -> None:
    large = "--large" in sys.argv
    sizes = [256, 1024, 4096] + ([16384] if large else [])

    print("== Table 1, row 'Exact': measured label sizes (bits) ==")
    rows = run_table1_exact(sizes=sizes, families=["random"], queries=100)
    print(
        format_table(
            rows,
            columns=[
                "scheme", "n", "max_bits", "avg_bits", "core_max_bits",
                "paper_upper_quarter", "paper_upper_half", "mismatches",
            ],
        )
    )

    print("\n== Table 1, rows 'k-distance' ==")
    rows = run_table1_kdistance(sizes=sizes[:2], queries=100)
    print(
        format_table(
            rows,
            columns=["scheme", "n", "k", "regime", "max_bits", "paper_bound", "mismatches"],
        )
    )

    print("\n== Table 1, row 'Approximate' ==")
    rows = run_table1_approx(sizes=sizes[:2], queries=100)
    print(
        format_table(
            rows,
            columns=["scheme", "n", "eps", "max_bits", "paper_bound", "worst_ratio", "mismatches"],
        )
    )


if __name__ == "__main__":
    main()
