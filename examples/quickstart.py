"""Quickstart: build a DistanceIndex, save it, reopen it, query it.

Run with::

    python examples/quickstart.py

The walkthrough mirrors the command-line workflow::

    repro-labels encode --scheme freedman --family random --n 2000 --out labels.bin
    repro-labels query labels.bin --pairs 1000
    repro-labels catalog add forest.cat --name exact --scheme freedman --n 2000
"""

from __future__ import annotations

import os
import tempfile

from repro import DistanceIndex, IndexCatalog, TreeDistanceOracle, random_prufer_tree


def main() -> None:
    # 1. build (or load) a rooted tree --------------------------------------
    tree = random_prufer_tree(2000, seed=42)
    oracle = TreeDistanceOracle(tree)  # ground truth, used only for checking

    # 2. one handle: encode the tree behind a DistanceIndex -----------------
    # The scheme is chosen by a spec string; "freedman" is the paper's
    # 1/4 log^2 n scheme.  Labels, bit strings and scheme classes stay
    # behind the facade.
    index = DistanceIndex.build(tree, "freedman")

    u, v = 17, 1234
    result = index.query(u, v)
    print("== exact distance index (Freedman et al.) ==")
    print(f"query({u}, {v}) = {result}")
    print(f"value={result.value}  is_exact={result.is_exact}")
    print(f"distance from oracle : {oracle.distance(u, v)}")

    # 3. save the index: one shippable artefact -----------------------------
    # The file is the artefact the paper's model implies: distribute the
    # labels, discard the tree.
    workdir = tempfile.mkdtemp()
    path = os.path.join(workdir, "labels.bin")
    written = index.save(path)
    stats = index.stats()
    print("\n== saved index ==")
    print(f"wrote {path}: {written} bytes for {stats['n']} labels")
    print(f"total label bits: {stats['total_label_bits']} "
          f"(max {stats['max_label_bits']} bits per label)")

    # 4. reopen and serve queries from the file alone -----------------------
    # The scheme is rebuilt from the spec persisted in the file header.
    served = DistanceIndex.open(path)
    print("\n== serving from the file (no tree, no encoder) ==")
    print(f"scheme spec from file: {served.spec}")
    print(f"query({u}, {v}).value = {served.query(u, v).value}")
    pairs = [(17, 1234), (0, 1999), (5, 5), (42, 1000)]
    print(f"batch values: {[r.value for r in served.batch(pairs)]}")
    print("4x4 matrix over chosen nodes (raw=True skips result wrapping):")
    for row in served.matrix([17, 1234, 0, 1999], raw=True):
        print(f"  {row}")

    # 5. bounded distances: is v within k hops of u? ------------------------
    bounded = DistanceIndex.build(tree, "k-distance:k=8")
    answer = bounded.query(u, v)
    print("\n== k-distance index (k=8) ==")
    print(f"query({u}, {v}) = {answer}")
    print(f"within bound? {answer.within_bound}")

    # 6. approximate distances with much smaller labels ---------------------
    approx = DistanceIndex.build(tree, "approximate:epsilon=0.5")
    estimate = approx.query(u, v)
    print("\n== (1+eps)-approximate index (eps=0.5) ==")
    print(f"estimate {estimate.value:.1f} vs exact {oracle.distance(u, v)} "
          f"(guaranteed <= {estimate.ratio_bound}x)")
    print(f"store size: {approx.stats()['payload_bytes']} bytes "
          f"vs exact {stats['payload_bytes']} bytes")

    # 7. a forest in one file: the IndexCatalog -----------------------------
    catalog = IndexCatalog()
    catalog.add("exact", index)
    catalog.add("bounded", bounded)
    catalog.add("approx", approx)
    forest_path = os.path.join(workdir, "forest.cat")
    catalog.save(forest_path)

    reopened = IndexCatalog.load(forest_path)  # reads only the TOC
    print("\n== catalog: three indexes, one artefact ==")
    print(f"members: {reopened.names()}")
    print(f"routed query('exact', {u}, {v}).value = "
          f"{reopened.query('exact', u, v).value}")
    print(f"routed query('approx', {u}, {v}).value = "
          f"{reopened.query('approx', u, v).value:.1f}")


if __name__ == "__main__":
    main()
