"""Quickstart: label a tree, pack the labels, and serve queries from bits.

Run with::

    python examples/quickstart.py

The walkthrough mirrors the command-line store workflow::

    repro-labels encode --scheme freedman --family random --n 2000 --out labels.bin
    repro-labels query labels.bin --pairs 1000
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    AlstrupScheme,
    ApproximateScheme,
    FreedmanScheme,
    KDistanceScheme,
    LabelStore,
    QueryEngine,
    TreeDistanceOracle,
    random_prufer_tree,
)


def main() -> None:
    # 1. build (or load) a rooted tree --------------------------------------
    tree = random_prufer_tree(2000, seed=42)
    oracle = TreeDistanceOracle(tree)  # ground truth, used only for checking

    # 2. exact distance labels (the paper's 1/4 log^2 n scheme) -------------
    scheme = FreedmanScheme()
    labels = scheme.encode(tree)

    u, v = 17, 1234
    print("== exact distance labeling (Freedman et al.) ==")
    print(f"label of node {u}: {labels[u].bit_length()} bits")
    print(f"label of node {v}: {labels[v].bit_length()} bits")
    print(f"distance from labels : {scheme.distance(labels[u], labels[v])}")
    print(f"distance from oracle : {oracle.distance(u, v)}")

    # 3. pack every label into one shippable store file ---------------------
    # The store is the artefact the paper's model implies: distribute the
    # labels, discard the tree.  All labels live in one contiguous buffer
    # behind a varint offset index (format: repro/store/__init__.py).
    store = LabelStore.from_labels(scheme, labels)
    path = os.path.join(tempfile.mkdtemp(), "labels.bin")
    written = store.save(path)
    print("\n== packed label store ==")
    print(f"wrote {path}: {written} bytes for {store.n} labels")
    print(f"total label bits: {store.total_label_bits} "
          f"(max {store.max_label_bits} bits per label)")

    # 4. reload and serve queries from the file alone -----------------------
    # The engine rebuilds the scheme from the spec in the file header,
    # caches parsed labels (LRU) and answers batches by parsing each
    # distinct endpoint once.
    engine = QueryEngine(LabelStore.load(path))
    print("\n== serving from the store (no tree, no encoder) ==")
    print(f"distance from store  : {engine.distance(u, v)}")
    pairs = [(17, 1234), (0, 1999), (5, 5), (42, 1000)]
    print(f"batch_distance({pairs}) = {engine.batch_distance(pairs)}")
    print(f"4x4 distance matrix of {pairs[0]} endpoints and friends:")
    for row in engine.distance_matrix([17, 1234, 0, 1999]):
        print(f"  {row}")
    print(f"parsed-label cache: {engine.cache_info()}")

    # 5. the 1/2 log^2 n baseline the paper improves on ---------------------
    baseline_store = LabelStore.encode_tree(AlstrupScheme(), tree)
    print("\n== total encoded size (store payload, in bytes) ==")
    print(f"freedman : {store.payload_bytes}")
    print(f"alstrup  : {baseline_store.payload_bytes}")

    # 6. bounded distances: is v within k hops of u? ------------------------
    k = 8
    bounded_engine = QueryEngine.encode_tree(KDistanceScheme(k), tree)
    answer = bounded_engine.query(u, v)
    print(f"\n== k-distance labeling (k={k}) ==")
    print(f"within {k} hops? {'yes, distance ' + str(answer) if answer is not None else 'no'}")

    # 7. approximate distances with much smaller labels ---------------------
    approx_engine = QueryEngine.encode_tree(ApproximateScheme(epsilon=0.5), tree)
    estimate = approx_engine.query(u, v)
    print("\n== (1+eps)-approximate labeling (eps=0.5) ==")
    print(f"estimate {estimate:.1f} vs exact {oracle.distance(u, v)}")
    print(f"store size: {approx_engine.store.payload_bytes} bytes")


if __name__ == "__main__":
    main()
