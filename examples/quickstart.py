"""Quickstart: label a tree and answer distance queries from labels alone.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AlstrupScheme,
    FreedmanScheme,
    KDistanceScheme,
    ApproximateScheme,
    TreeDistanceOracle,
    random_prufer_tree,
)


def main() -> None:
    # 1. build (or load) a rooted tree --------------------------------------
    tree = random_prufer_tree(2000, seed=42)
    oracle = TreeDistanceOracle(tree)  # ground truth, used only for checking

    # 2. exact distance labels (the paper's 1/4 log^2 n scheme) -------------
    scheme = FreedmanScheme()
    labels = scheme.encode(tree)

    u, v = 17, 1234
    print("== exact distance labeling (Freedman et al.) ==")
    print(f"label of node {u}: {labels[u].bit_length()} bits")
    print(f"label of node {v}: {labels[v].bit_length()} bits")
    print(f"distance from labels : {scheme.distance(labels[u], labels[v])}")
    print(f"distance from oracle : {oracle.distance(u, v)}")

    # labels are honest bit strings: serialise, ship, parse, query ----------
    bits_u = labels[u].to_bits()
    bits_v = labels[v].to_bits()
    print(f"distance from raw bits: {scheme.distance_from_bits(bits_u, bits_v)}")

    # 3. the 1/2 log^2 n baseline the paper improves on ---------------------
    baseline = AlstrupScheme()
    baseline_labels = baseline.encode(tree)
    print("\n== label sizes (max over all nodes, in bits) ==")
    print(f"freedman : {max(l.bit_length() for l in labels.values())}")
    print(f"alstrup  : {max(l.bit_length() for l in baseline_labels.values())}")

    # 4. bounded distances: is v within k hops of u? ------------------------
    k = 8
    bounded = KDistanceScheme(k)
    bounded_labels = bounded.encode(tree)
    answer = bounded.bounded_distance(bounded_labels[u], bounded_labels[v])
    print(f"\n== k-distance labeling (k={k}) ==")
    print(f"within {k} hops? {'yes, distance ' + str(answer) if answer is not None else 'no'}")

    # 5. approximate distances with much smaller labels ---------------------
    approx = ApproximateScheme(epsilon=0.5)
    approx_labels = approx.encode(tree)
    estimate = approx.approximate_distance(approx_labels[u], approx_labels[v])
    print("\n== (1+eps)-approximate labeling (eps=0.5) ==")
    print(f"estimate {estimate:.1f} vs exact {oracle.distance(u, v)}")
    print(f"max label size: {max(l.bit_length() for l in approx_labels.values())} bits")


if __name__ == "__main__":
    main()
